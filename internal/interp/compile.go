package interp

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ir"
	"repro/internal/passes"
)

// This file is the bytecode compiler: a one-time, per-function pass that
// numbers every ir.Value into a dense register slot (ir.NumberFunction)
// and lowers basic blocks into a flat []instr array with pre-resolved
// operands — register indices instead of map lookups, constants folded
// into a prefilled tail of the register file, callees and builtins bound
// at compile time, and branch targets as pc offsets. The VM (vm.go)
// dispatches over this form; the tree-walking interpreter in exec.go is
// kept as the semantic reference.
//
// Two optimization layers sit in front of the lowering:
//
//   - the passes.O1 pipeline (mem2reg, constfold, dce, simplifycfg) runs
//     over a private clone of the module, promoting scalar locals to SSA
//     values with phis — phis lower to register moves on the incoming
//     edges (parallel-copy semantics, cycles broken through a per-frame
//     scratch register), so promoted locals never touch memory;
//   - superinstruction fusion collapses the dominant adjacent pairs and
//     triples — cmp+condbr, load+binop+store, binop+store and
//     index-compute+load — into single dispatches when the intermediate
//     value has no other use.
//
// Both layers are on by default and controlled per-pass by CompileOpts.

// vmOp is a VM opcode. The set is deliberately finer-grained than
// ir.Opcode where pre-resolution pays: builtin calls split into
// work-item, math and IR-function calls, constant-index GEPs fold
// the scaled offset, and the fused superinstructions above collapse
// multi-instruction idioms into one dispatch.
type vmOp uint8

const (
	opAlloca       vmOp = iota // dst = fresh private region of imm bytes (space in sub)
	opAllocaLocal              // dst = work-group local region, slot a, imm bytes
	opLoad                     // dst = load kind from regs[a]
	opStore                    // store regs[a] (kind) to regs[b]
	opGEP                      // dst = regs[a] + regs[b].I*imm
	opGEPConst                 // dst = regs[a] + imm (pre-scaled constant index)
	opBin                      // dst = binop sub(regs[a], regs[b]), result kind
	opCmp                      // dst = cmp sub(regs[a], regs[b])
	opCast                     // dst = cast sub(regs[a]) to kind
	opSelect                   // dst = regs[a] ? regs[b] : regs[c]
	opAtomic                   // dst = atomic sub on regs[a] with regs[b] (operand kind)
	opBarrier                  // work-group barrier: suspend the work-item
	opCall                     // dst = call fn(regs[args...])
	opWI                       // dst = work-item builtin sub; dim = a<0 ? imm : regs[a].I
	opMath                     // dst = math builtin sub(regs[a][, regs[b]]) at kind
	opJump                     // pc = imm
	opCondJump                 // pc = regs[a] ? b : c
	opRet                      // return regs[a] (a < 0: void)
	opTrap                     // execution fault with msg
	opMove                     // dst = regs[a] (phi edge copy)
	opCmpJump                  // fused cmp+condbr: pc = cmp sub(regs[a], regs[b]) ? c : imm
	opBinStore                 // fused bin+store: binop sub(regs[a], regs[b]) kind -> [regs[c]]
	opLoadBinStore             // fused load+bin+store: load kind [regs[a]] op regs[b] -> [regs[c]]
	opLoadIdx                  // fused gep+load: dst = load kind [regs[a] + regs[b].I*imm]
	opLoadOff                  // fused gepconst+load: dst = load kind [regs[a] + imm]

	// Specialized binops: the (kind, op) pairs that dominate promoted
	// loop bodies dispatch as single-case opcodes — no helper call, no
	// inner switch. Semantics are bit-identical to binOp's.
	opAddI32
	opSubI32
	opMulI32
	opAndI32
	opOrI32
	opXorI32
	opAddI64
	opAddF32
	opSubF32
	opMulF32
	opDivF32

	// Profile-guided superinstructions: emitted only for blocks a
	// ProfileGuide marks hot (tier-1 recompiles), never by the static
	// single-use heuristic alone, so profile-free compiles stay
	// byte-identical to the pre-tiering output.
	opBinBin     // fused bin+bin: t = bin sub(a,b) kind; dst = bin imm.op(t, c) imm.kind
	opBinCmpJump // fused bin+cmp+condbr: dst = bin sub(a,b) kind; pc = cmp args[0](dst, args[1]) ? c : imm
)

// opBinBin packs its second binop into imm: bits 0-7 the BinKind, bits
// 8-15 the result kind, bit bbSwapped set when the first result is the
// RIGHT operand of the second (non-commutative) binop.
const (
	bbKindShift = 8
	bbSwapped   = 1 << 16
)

// opBinCmpJump packs the comparison into args[0]: bits 0-15 the
// CmpPred, bit bcjSwapped set when the bin result is the RIGHT operand
// of the comparison. args[1] is the comparison's other operand register.
// Unlike the older fusions, the bin result may be multi-use — its
// register write is kept — which is exactly what lets dynamic frequency
// (not the static single-use test) decide the fusion.
const bcjSwapped = 1 << 16

// specBin maps a (BinKind, Kind) pair onto its specialized opcode.
var specBin = map[[2]uint8]vmOp{
	{uint8(ir.Add), uint8(ir.I32)}:  opAddI32,
	{uint8(ir.Sub), uint8(ir.I32)}:  opSubI32,
	{uint8(ir.Mul), uint8(ir.I32)}:  opMulI32,
	{uint8(ir.And), uint8(ir.I32)}:  opAndI32,
	{uint8(ir.Or), uint8(ir.I32)}:   opOrI32,
	{uint8(ir.Xor), uint8(ir.I32)}:  opXorI32,
	{uint8(ir.Add), uint8(ir.I64)}:  opAddI64,
	{uint8(ir.FAdd), uint8(ir.F32)}: opAddF32,
	{uint8(ir.FSub), uint8(ir.F32)}: opSubF32,
	{uint8(ir.FMul), uint8(ir.F32)}: opMulF32,
	{uint8(ir.FDiv), uint8(ir.F32)}: opDivF32,
}

// lbsSwapped flags an opLoadBinStore whose loaded value is the RIGHT
// operand of the (non-commutative) binop; it shares the sub byte with
// the BinKind, which never reaches bit 7.
const lbsSwapped = 0x80

// Work-item builtin codes (opWI sub).
const (
	wiGlobalID uint8 = iota
	wiLocalID
	wiGroupID
	wiNumGroups
	wiLocalSize
	wiGlobalSize
	wiGlobalOffset
	wiWorkDim
)

var wiBuiltins = map[string]uint8{
	"get_global_id":     wiGlobalID,
	"get_local_id":      wiLocalID,
	"get_group_id":      wiGroupID,
	"get_num_groups":    wiNumGroups,
	"get_local_size":    wiLocalSize,
	"get_global_size":   wiGlobalSize,
	"get_global_offset": wiGlobalOffset,
	"get_work_dim":      wiWorkDim,
}

// instr is one VM instruction. dst/a/b/c are register-file indices (-1
// where unused); imm carries sizes, pre-scaled offsets and jump targets.
type instr struct {
	op   vmOp
	sub  uint8   // BinKind / CmpPred / CastKind / AtomicKind / builtin code / AddrSpace
	kind ir.Kind // operand or result kind where the operation is typed
	dst  int32
	a    int32
	b    int32
	c    int32
	imm  int64
	fn   *compiledFn // opCall target
	args []int32     // opCall argument registers
	msg  string      // opTrap message
}

// compiledFn is the compiled form of one IR function: flat code over a
// register file of nregs Values, of which [0, nparams) are the incoming
// arguments and [constBase, constBase+len(consts)) are prefilled
// constants (a scratch slot for phi-cycle breaking may follow).
type compiledFn struct {
	fn        *ir.Function
	code      []instr
	nparams   int
	constBase int
	nregs     int
	consts    []Value

	// blockStarts/blockNames map bytecode pcs back to the source basic
	// blocks for execution profiling: blockStarts is ascending (blocks
	// are emitted in order and each emits at least its terminator), so
	// the block containing any pc — including a jump-threaded landing
	// mid-block — is a binary search away. A final "(edge-copies)" entry
	// covers the synthesized edge-stub region after the last block.
	blockStarts []int32
	blockNames  []string

	// regPool recycles register files across frames and launches; files
	// are cleared on Get so stale values (and the regions they pin) do
	// not leak between activations.
	regPool sync.Pool

	// Warp execution tables (kernels compiled with WarpWidth > 0; nil
	// otherwise). wmode holds one dispatch-mode byte per instruction;
	// uniform marks the registers whose value is warp-invariant (their
	// home is the warp's shared file in vector mode); uniformRegs lists
	// them for the spill/re-form copies; reformPC marks the resume pcs
	// (instruction after a barrier in a control-uniform block) where a
	// spilled warp may re-enter vector dispatch.
	wmode       []uint8
	uniform     []bool
	uniformRegs []int32
	reformPC    map[int32]bool
}

// getRegs returns a cleared register file with the constant tail
// prefilled. The pooled pointer travels with the frame and goes back
// verbatim in putRegs, so frame push/pop allocates nothing.
func (cf *compiledFn) getRegs() *[]Value {
	p := cf.regPool.Get().(*[]Value)
	regs := *p
	clear(regs)
	copy(regs[cf.constBase:], cf.consts)
	return p
}

func (cf *compiledFn) putRegs(p *[]Value) {
	cf.regPool.Put(p)
}

// CompileOpts controls bytecode compilation.
type CompileOpts struct {
	// Opt runs the passes.O1 pipeline (mem2reg, constfold, dce,
	// simplifycfg) over a private clone of the module before lowering;
	// the caller's module is never mutated.
	Opt bool
	// Disable names optimizations to skip: the O1 pass names
	// ("mem2reg", "constfold", "dce", "simplifycfg") and "fuse" for
	// superinstruction fusion.
	Disable []string
	// WarpWidth enables warp-style batched execution: the work-items
	// of a group run in fixed-width batches with one fetch/decode per
	// instruction per warp, driven by a per-kernel uniformity analysis
	// (passes.AnalyzeUniformity). 0 disables warp execution entirely
	// (the zero value keeps plain per-item dispatch).
	WarpWidth int
	// Profile, when non-nil, turns the compile profile-guided (tier 1+):
	// measured block frequencies select which blocks get superinstruction
	// effort (including the hot-only opBinBin/opBinCmpJump fusions,
	// ranked by dynamic frequency instead of the static single-use
	// heuristic) and drive hot-path block layout — profile-hot successors
	// fall through, cold blocks move out-of-line. With WarpWidth > 0 the
	// uniformity analysis additionally gates branch fusions so fused
	// jumps stay on the once-per-warp dispatch path.
	Profile *ProfileGuide
}

// Tier0CompileOpts is the cheap first-launch compile of tiered
// execution: no O1 pipeline (and so no module clone or per-pass
// verification), no superinstruction fusion, no uniformity analysis or
// warp tables. It minimizes compile-to-first-dispatch latency; the tier
// controller recompiles hot kernels at full optimization in the
// background (see TierController).
var Tier0CompileOpts = CompileOpts{Disable: []string{"fuse"}}

// DefaultWarpWidth is the warp width DefaultCompileOpts enables:
// 64 lanes, the warp/wavefront size of the simulated AMD hardware.
const DefaultWarpWidth = 64

// DefaultCompileOpts is what CompileModule (and therefore SharedProgram
// and every host-layer cache) compiles with: the full O1 pipeline plus
// fusion and warp-batched dispatch.
var DefaultCompileOpts = CompileOpts{Opt: true, WarpWidth: DefaultWarpWidth}

func (o CompileOpts) disabled(name string) bool {
	for _, n := range o.Disable {
		if n == name {
			return true
		}
	}
	return false
}

// Prog is a compiled module: the unit the VM executes and the unit the
// host layers cache (opencl.Program keeps one per built program; pooled
// machines resolve theirs through SharedProgram).
type Prog struct {
	// Mod is the module the program was compiled FROM — the identity the
	// caches and machine pools key by. The executed code may come from
	// an optimized private clone (src).
	Mod *ir.Module

	src *ir.Module
	fns map[string]*compiledFn

	// localSizes assigns every local-space alloca in the module a dense
	// work-group slot; sizes are static (element size × count), so a
	// group's local regions are carved without locks.
	localSizes []int64

	// warpWidth is the lane count of warp-batched execution (0: the
	// program runs work-items one at a time).
	warpWidth int

	// tier is the optimization tier the program was compiled at: 0 for
	// the cheap first-launch compile (no O1/fusion/warp tables), 1 for
	// the fully optimized form. decisions records the profile-guided
	// choices of a tier-1+ compile (nil without a ProfileGuide).
	tier      int
	decisions []TierDecision
}

// WarpWidth returns the warp lane width the program was compiled with
// (0: warp execution disabled).
func (p *Prog) WarpWidth() int { return p.warpWidth }

// Tier returns the optimization tier the program was compiled at
// (0: cheap first-launch compile, 1: full O1 pipeline).
func (p *Prog) Tier() int { return p.tier }

// Decisions returns the per-function profile-guided compile decisions
// of a tier-1+ compile (nil when no ProfileGuide was supplied). The
// clcc -emit-tiers debug flag renders these.
func (p *Prog) Decisions() []TierDecision { return p.decisions }

// SuperinstrChoice records one candidate profile-guided fusion: either
// emitted (Gated false) with the dynamic weight of its enclosing block,
// or skipped because the uniformity analysis proved the fused branch
// divergent (fusing it would push the whole warp off the once-per-warp
// dispatch path).
type SuperinstrChoice struct {
	Fn     string
	Block  string
	Name   string // opcode name ("bin+bin", "bin+cmp+jump")
	Weight int64  // profile weight of the enclosing block
	Gated  bool   // skipped: divergent under the uniformity analysis
}

// TierDecision is the profile-guided compile record of one function:
// the final block emission order (hot successors fall through) and the
// superinstruction choices with their profile weights.
type TierDecision struct {
	Fn         string
	BlockOrder []string
	Super      []SuperinstrChoice
}

// CompileModule lowers every defined function of the module to bytecode
// with the default optimization pipeline (see DefaultCompileOpts). The
// module must not be mutated afterwards (callees are resolved to
// compiled-function pointers at this point).
func CompileModule(mod *ir.Module) *Prog {
	return CompileModuleOpts(mod, DefaultCompileOpts)
}

// CompileModuleOpts is CompileModule with explicit optimization
// settings — the parity suite compiles one module both ways and holds
// the outputs byte-identical.
func CompileModuleOpts(mod *ir.Module, opts CompileOpts) *Prog {
	src := mod
	if opts.Opt {
		clone := ir.CloneModule(mod)
		// A pipeline failure (it verifies after every pass) falls back
		// to lowering the unoptimized module: slower, never wrong.
		if err := passes.RunO1(clone, opts.Disable...); err == nil {
			src = clone
		}
	}
	p := &Prog{Mod: mod, src: src, fns: make(map[string]*compiledFn)}
	if opts.Opt {
		p.tier = 1
	}
	if opts.WarpWidth > 0 {
		p.warpWidth = opts.WarpWidth
	}
	fuse := !opts.disabled("fuse")
	// Two phases so calls can reference functions defined later.
	for _, f := range src.Funcs {
		if !f.IsDecl() {
			p.fns[f.Name] = &compiledFn{fn: f}
		}
	}
	for _, f := range src.Funcs {
		if !f.IsDecl() {
			p.compileFn(p.fns[f.Name], fuse, opts.Profile, opts.WarpWidth)
		}
	}
	if p.warpWidth > 0 {
		// The warp stream drives only kernel top frames (calls spill to
		// the scalar path), so only kernels get dispatch-mode tables.
		for _, f := range src.Funcs {
			if f.Kernel && !f.IsDecl() {
				p.fns[f.Name].buildWarpTables()
			}
		}
	}
	return p
}

// SharedProgram returns the compiled form of mod from a bounded global
// cache, compiling on first use. The bound mirrors the machine pool's
// module cap: a long-lived daemon JITs a module per application program,
// and an unbounded cache would pin every retired module forever.
const maxCachedProgs = 64

var (
	progMu    sync.Mutex
	progCache = make(map[*ir.Module]*Prog)
	// cacheMetrics (guarded by progMu) receives SharedProgram hit/miss
	// events, labeled with the program's tier; the accelOS runtime adapts
	// it onto its telemetry registry so tier promotions and cold compiles
	// are observable.
	cacheMetrics CacheMetrics
)

// progVersion counts program hot-swaps (SwapProgram). In-flight
// LaunchHandles compare it against the version they last resolved at
// each slice boundary, so a background tier promotion is picked up
// without the handles polling the cache every slice.
var progVersion atomic.Uint64

// ProgramVersion returns the current hot-swap generation.
func ProgramVersion() uint64 { return progVersion.Load() }

// CacheMetrics receives shared-program-cache events; implementations
// must be safe for concurrent use (calls arrive under the cache lock,
// so they must not call back into the program cache).
type CacheMetrics interface {
	ProgramCacheHit(tier int)
	ProgramCacheMiss(tier int)
}

// SetCacheMetrics installs (or, with nil, removes) the process-wide
// shared-program-cache metrics sink.
func SetCacheMetrics(m CacheMetrics) {
	progMu.Lock()
	cacheMetrics = m
	progMu.Unlock()
}

func SharedProgram(mod *ir.Module) *Prog {
	progMu.Lock()
	defer progMu.Unlock()
	if p := progCache[mod]; p != nil {
		if cacheMetrics != nil {
			cacheMetrics.ProgramCacheHit(p.tier)
		}
		return p
	}
	p := CompileModule(mod)
	cacheProgramLocked(p)
	if cacheMetrics != nil {
		cacheMetrics.ProgramCacheMiss(p.tier)
	}
	return p
}

// cachedProgram returns the cached program for mod without compiling
// (nil if absent). The tier controller uses it to avoid downgrading a
// module some other path already compiled.
func cachedProgram(mod *ir.Module) *Prog {
	progMu.Lock()
	defer progMu.Unlock()
	return progCache[mod]
}

// recordCacheEvent reports a hit or miss on behalf of resolution paths
// that bypass SharedProgram (the tier controller's ProgramFor), so the
// cache counters stay truthful under tiered execution.
func recordCacheEvent(hit bool, tier int) {
	progMu.Lock()
	m := cacheMetrics
	progMu.Unlock()
	if m == nil {
		return
	}
	if hit {
		m.ProgramCacheHit(tier)
	} else {
		m.ProgramCacheMiss(tier)
	}
}

// SwapProgram atomically replaces the cached program for p.Mod and
// bumps the hot-swap generation. The previous program stays valid for
// slices already executing from it (compiled programs are immutable);
// handles and pooled machines re-resolve at their next slice boundary.
func SwapProgram(p *Prog) {
	progMu.Lock()
	cacheProgramLocked(p)
	progMu.Unlock()
	progVersion.Add(1)
}

// ShareProgram installs an already-compiled program in the shared cache
// under its module identity. The accelOS JIT uses it after running the
// O1 pipeline over the module in place: lowering with the default
// options would clone and re-optimize an already-optimal module.
func ShareProgram(p *Prog) {
	progMu.Lock()
	defer progMu.Unlock()
	cacheProgramLocked(p)
}

func cacheProgramLocked(p *Prog) {
	if len(progCache) >= maxCachedProgs {
		for k := range progCache {
			delete(progCache, k)
			break
		}
	}
	progCache[p.Mod] = p
}

// constKey dedups constants by kind and bits.
type constKey struct {
	kind ir.Kind
	i    int64
	f    float64
}

// fixup is a branch operand awaiting its target pc: the code index and
// which field to patch, plus the target (a block, or an edge stub when
// the jump must execute phi moves first).
type fixup struct {
	at    int
	field uint8 // 'i' = imm, 'b', 'c'
	blk   *ir.Block
	stub  int // -1: blk is the target
}

// edgeStub is a synthesized trampoline for a conditional edge into a
// phi-bearing block: the parallel copies of that edge followed by a jump
// to the real target (classic critical-edge splitting, done in bytecode
// space instead of the CFG).
type edgeStub struct {
	moves []instr
	to    *ir.Block
}

type fnCompiler struct {
	prog *Prog
	cf   *compiledFn
	nb   *ir.Numbering
	fuse bool

	constRegs map[constKey]int32
	consts    []Value

	blockPC map[*ir.Block]int32
	code    []instr
	fixups  []fixup
	stubs   []edgeStub
	uses    map[ir.Value]int // operand occurrence count, for fusion legality

	// Profile-guided compile state (nil/zero without a ProfileGuide):
	// guide supplies measured block weights, uni gates branch fusions on
	// warp compiles, curHot/curWeight describe the block being emitted,
	// and dec accumulates the decisions record.
	guide     *ProfileGuide
	uni       *passes.Uniformity
	curHot    bool
	curWeight int64
	curBlock  string
	dec       *TierDecision

	needScratch bool // some edge's parallel copy had a cycle
}

func (p *Prog) compileFn(cf *compiledFn, fuse bool, guide *ProfileGuide, warpWidth int) {
	fn := cf.fn
	c := &fnCompiler{
		prog:      p,
		cf:        cf,
		nb:        ir.NumberFunction(fn),
		fuse:      fuse,
		guide:     guide,
		constRegs: make(map[constKey]int32),
		blockPC:   make(map[*ir.Block]int32),
		uses:      make(map[ir.Value]int),
	}
	blocks := fn.Blocks
	if guide != nil {
		blocks = layoutBlocks(fn, guide)
		if warpWidth > 0 && fn.Kernel {
			// Warp compile of a kernel: the uniformity analysis gates
			// which branch fusions are worth the effort (a fused jump on
			// divergent operands would spill the warp off vector
			// dispatch at every loop test).
			c.uni = passes.AnalyzeUniformity(fn)
		}
		c.dec = &TierDecision{Fn: fn.Name}
		for _, b := range blocks {
			c.dec.BlockOrder = append(c.dec.BlockOrder, b.Name)
		}
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				c.uses[a]++
			}
		}
	}
	for bi, b := range blocks {
		c.blockPC[b] = int32(len(c.code))
		var next *ir.Block
		if bi+1 < len(blocks) {
			next = blocks[bi+1]
		}
		if c.guide != nil {
			c.curWeight = c.guide.Weight(fn.Name, b.Name)
			c.curHot = c.curWeight > 0
			c.curBlock = b.Name
		}
		c.emitBlock(b, next)
		if !b.Terminated() {
			c.code = append(c.code, instr{op: opTrap, msg: fmt.Sprintf("fell off unterminated block in %s", fn.Name)})
		}
	}
	for _, b := range blocks {
		cf.blockStarts = append(cf.blockStarts, c.blockPC[b])
		cf.blockNames = append(cf.blockNames, b.Name)
	}
	if c.dec != nil {
		p.decisions = append(p.decisions, *c.dec)
	}
	if len(c.stubs) > 0 {
		cf.blockStarts = append(cf.blockStarts, int32(len(c.code)))
		cf.blockNames = append(cf.blockNames, "(edge-copies)")
	}
	// Edge stubs go after the straight-line code; conditional branches
	// into phi-bearing blocks land here, run the edge's copies, and jump
	// on to the real target.
	stubPC := make([]int32, len(c.stubs))
	for i, st := range c.stubs {
		stubPC[i] = int32(len(c.code))
		c.code = append(c.code, st.moves...)
		c.code = append(c.code, instr{op: opJump, imm: int64(c.blockPC[st.to])})
	}
	for _, fx := range c.fixups {
		pc := c.blockPC[fx.blk]
		if fx.stub >= 0 {
			pc = stubPC[fx.stub]
		}
		switch fx.field {
		case 'i':
			c.code[fx.at].imm = int64(pc)
		case 'b':
			c.code[fx.at].b = pc
		case 'c':
			c.code[fx.at].c = pc
		}
	}
	c.threadJumps()
	cf.code = c.code
	cf.nparams = len(fn.Params)
	cf.constBase = c.nb.NumValues()
	cf.consts = c.consts
	cf.nregs = cf.constBase + len(c.consts)
	if c.needScratch {
		// The scratch slot sits after the constant tail, whose size is
		// only now final; rewrite the placeholder index.
		s := int32(cf.nregs)
		cf.nregs++
		for i := range cf.code {
			if cf.code[i].dst == scratchMark {
				cf.code[i].dst = s
			}
			if cf.code[i].a == scratchMark {
				cf.code[i].a = s
			}
		}
	}
	n := cf.nregs
	cf.regPool.New = func() any {
		s := make([]Value, n)
		return &s
	}
}

// layoutBlocks orders a function's blocks for emission by profile
// weight: starting from the entry block, each chain greedily follows
// the hottest not-yet-placed successor (so the hot path becomes a
// fallthrough run and its unconditional jumps can be elided), then the
// next-hottest unplaced block seeds a new chain; stone-cold blocks
// land at the end in original order. The entry block always stays
// first — kernel frames begin at pc 0.
func layoutBlocks(fn *ir.Function, guide *ProfileGuide) []*ir.Block {
	if len(fn.Blocks) < 2 {
		return fn.Blocks
	}
	placed := make(map[*ir.Block]bool, len(fn.Blocks))
	out := make([]*ir.Block, 0, len(fn.Blocks))
	weight := func(b *ir.Block) int64 { return guide.Weight(fn.Name, b.Name) }
	place := func(b *ir.Block) {
		for b != nil && !placed[b] {
			placed[b] = true
			out = append(out, b)
			// Follow the hottest unplaced successor; stop when every
			// successor is placed or cold (ties keep successor order, so
			// an unprofiled function reproduces the original layout).
			var next *ir.Block
			best := int64(0)
			for _, s := range blockSuccs(b) {
				if !placed[s] && weight(s) > best {
					next, best = s, weight(s)
				}
			}
			b = next
		}
	}
	place(fn.Blocks[0])
	for {
		var seed *ir.Block
		best := int64(0)
		for _, b := range fn.Blocks {
			if !placed[b] && weight(b) > best {
				seed, best = b, weight(b)
			}
		}
		if seed == nil {
			break
		}
		place(seed)
	}
	for _, b := range fn.Blocks {
		if !placed[b] {
			out = append(out, b)
		}
	}
	return out
}

// blockSuccs returns a block's CFG successors from its terminator.
func blockSuccs(b *ir.Block) []*ir.Block {
	for _, in := range b.Instrs {
		if !in.IsTerminator() {
			continue
		}
		switch in.Op {
		case ir.OpBr:
			return []*ir.Block{in.Then}
		case ir.OpCondBr:
			return []*ir.Block{in.Then, in.Else}
		}
		return nil
	}
	return nil
}

// emitBlock lowers one basic block: the phi prefix produces no code
// (phis are written by their incoming edges), fusible sequences lower
// to superinstructions, and the terminator carries this block's
// outgoing phi copies. pos records where each value-producing IR
// instruction landed in the bytecode, feeding the phi-copy coalescer.
// next is the block emitted immediately after this one (nil at the
// end): a profile-guided compile elides the unconditional jump of a
// branch that would land exactly there.
func (c *fnCompiler) emitBlock(b, next *ir.Block) {
	instrs := b.Instrs
	pos := make(map[*ir.Instr]int)
	i := len(b.Phis())
	for i < len(instrs) {
		in := instrs[i]
		if in.IsTerminator() {
			c.emitTerm(b, in, pos, next)
			i++
			continue
		}
		at := len(c.code)
		if n := c.tryFuse(instrs, i); n > 0 {
			// The fused group's surviving result (if any) is produced by
			// its last constituent.
			pos[instrs[i+n-1]] = at
			i += n
			continue
		}
		pos[in] = at
		c.emit(in)
		i++
	}
}

// singleUse reports whether the instruction's result is consumed exactly
// once in the whole function — the legality condition for skipping the
// intermediate register write when fusing.
func (c *fnCompiler) singleUse(in *ir.Instr) bool { return c.uses[in] == 1 }

// tryFuse matches a superinstruction starting at instrs[i] and emits it,
// returning how many IR instructions it consumed (0: no match). Only
// adjacent sequences fuse, and every intermediate value must be
// single-use, so skipping its register write is unobservable.
func (c *fnCompiler) tryFuse(instrs []*ir.Instr, i int) int {
	if !c.fuse {
		return 0
	}
	in := instrs[i]
	switch in.Op {
	case ir.OpLoad:
		// load + bin + store: the accumulate idiom (mem op= x).
		if i+2 < len(instrs) {
			bin, st := instrs[i+1], instrs[i+2]
			if bin.Op == ir.OpBin && st.Op == ir.OpStore &&
				c.singleUse(in) && c.singleUse(bin) &&
				st.Args[0] == ir.Value(bin) &&
				(bin.Args[0] == ir.Value(in)) != (bin.Args[1] == ir.Value(in)) {
				ops, ok := c.regs([]ir.Value{in.Args[0], bin.Args[0], bin.Args[1], st.Args[1]})
				if !ok {
					return 0
				}
				sub := uint8(bin.BinK)
				x := ops[1] // the non-loaded operand
				if bin.Args[1] == ir.Value(in) {
					sub |= lbsSwapped // loaded value is the RHS
				} else {
					x = ops[2]
				}
				c.code = append(c.code, instr{op: opLoadBinStore, sub: sub, kind: bin.Ty.Kind, a: ops[0], b: x, c: ops[3]})
				return 3
			}
		}
	case ir.OpBin:
		// Profile-guided superinstructions, only in blocks the guide
		// marks hot. bin+cmp+condbr keeps the bin's register write, so
		// unlike the static fusions below the bin result may have other
		// uses — the induction-variable increment feeding the back-edge
		// test is the canonical shape.
		if c.guide != nil && c.curHot && i+2 < len(instrs) {
			cmp, br := instrs[i+1], instrs[i+2]
			if cmp.Op == ir.OpCmp && br.Op == ir.OpCondBr &&
				fusableI32Bin(in) && fastIntPred(cmp.CmpK) &&
				c.singleUse(cmp) && br.Args[0] == ir.Value(cmp) &&
				(cmp.Args[0] == ir.Value(in)) != (cmp.Args[1] == ir.Value(in)) {
				info := int32(cmp.CmpK)
				other := cmp.Args[1]
				if cmp.Args[1] == ir.Value(in) {
					info |= bcjSwapped
					other = cmp.Args[0]
				}
				// In a warp kernel the fused jump replaces what would be
				// a once-dispatched uniform back edge; fuse only when it
				// stays uniform, else the superinstruction would drag the
				// whole branch onto the spill path.
				if c.uni != nil && !(c.uni.ValueUniform(in) && c.uni.ValueUniform(other)) {
					c.recordSuper("bin+cmp+jump", true)
				} else if ops, ok := c.regs([]ir.Value{in.Args[0], in.Args[1], other}); ok {
					at := len(c.code)
					c.code = append(c.code, instr{op: opBinCmpJump, dst: c.dst(in), sub: uint8(in.BinK), kind: in.Ty.Kind, a: ops[0], b: ops[1], args: []int32{info, ops[2]}})
					c.fixEdge(at, 'c', br.Block(), br.Then)
					c.fixEdge(at, 'i', br.Block(), br.Else)
					c.recordSuper("bin+cmp+jump", false)
					return 3
				}
			}
		}
		// bin + bin: a dependent arithmetic pair collapses to one
		// dispatch; hot blocks only, first result must be single-use.
		if c.guide != nil && c.curHot && i+1 < len(instrs) {
			b2 := instrs[i+1]
			if b2.Op == ir.OpBin && fusableI32Bin(in) && fusableI32Bin(b2) &&
				c.singleUse(in) &&
				(b2.Args[0] == ir.Value(in)) != (b2.Args[1] == ir.Value(in)) {
				imm := int64(uint8(b2.BinK)) | int64(b2.Ty.Kind)<<bbKindShift
				other := b2.Args[1]
				if b2.Args[1] == ir.Value(in) {
					imm |= bbSwapped
					other = b2.Args[0]
				}
				if ops, ok := c.regs([]ir.Value{in.Args[0], in.Args[1], other}); ok {
					c.code = append(c.code, instr{op: opBinBin, dst: c.dst(b2), sub: uint8(in.BinK), kind: in.Ty.Kind, a: ops[0], b: ops[1], c: ops[2], imm: imm})
					c.recordSuper("bin+bin", false)
					return 2
				}
			}
		}
		// bin + store.
		if i+1 < len(instrs) {
			st := instrs[i+1]
			if st.Op == ir.OpStore && c.singleUse(in) && st.Args[0] == ir.Value(in) {
				ops, ok := c.regs([]ir.Value{in.Args[0], in.Args[1], st.Args[1]})
				if !ok {
					return 0
				}
				c.code = append(c.code, instr{op: opBinStore, sub: uint8(in.BinK), kind: in.Ty.Kind, a: ops[0], b: ops[1], c: ops[2]})
				return 2
			}
		}
	case ir.OpGEP:
		// index-compute + load.
		if i+1 < len(instrs) {
			ld := instrs[i+1]
			if ld.Op == ir.OpLoad && c.singleUse(in) && ld.Args[0] == ir.Value(in) {
				elem := in.Ty.Elem.Size()
				if cv, isConst := ir.ConstIntValue(in.Args[1]); isConst {
					base, ok := c.reg(in.Args[0])
					if !ok {
						return 0
					}
					c.code = append(c.code, instr{op: opLoadOff, dst: c.dst(ld), kind: ld.Ty.Kind, a: base, imm: cv * elem})
					return 2
				}
				ops, ok := c.regs(in.Args)
				if !ok {
					return 0
				}
				c.code = append(c.code, instr{op: opLoadIdx, dst: c.dst(ld), kind: ld.Ty.Kind, a: ops[0], b: ops[1], imm: elem})
				return 2
			}
		}
	case ir.OpCmp:
		// cmp + condbr, the loop back-edge test. The fused form still
		// routes each side through its phi-copy stub when needed.
		if i+1 < len(instrs) {
			br := instrs[i+1]
			if br.Op == ir.OpCondBr && c.singleUse(in) && br.Args[0] == ir.Value(in) {
				ops, ok := c.regs(in.Args)
				if !ok {
					return 0
				}
				at := len(c.code)
				c.code = append(c.code, instr{op: opCmpJump, sub: uint8(in.CmpK), a: ops[0], b: ops[1]})
				c.fixEdge(at, 'c', br.Block(), br.Then)
				c.fixEdge(at, 'i', br.Block(), br.Else)
				return 2
			}
		}
	}
	return 0
}

// fusableI32Bin reports whether a bin has the shape the fused
// superinstructions execute on their inline integer path: an i32 result
// from a BinKind with a specialized opcode (no div/rem — those trap and
// stay on their own checked dispatch, preserving fault attribution).
func fusableI32Bin(in *ir.Instr) bool {
	if in.Ty.Kind != ir.I32 {
		return false
	}
	_, ok := specBin[[2]uint8{uint8(in.BinK), uint8(ir.I32)}]
	return ok
}

// fastIntPred reports whether fastCmp resolves the predicate on its
// inline integer path — the only comparisons bin+cmp+jump fuses.
func fastIntPred(p ir.CmpPred) bool {
	switch p {
	case ir.IEQ, ir.INE, ir.ILT, ir.ILE, ir.IGT, ir.IGE:
		return true
	}
	return false
}

// recordSuper logs one superinstruction decision of the current block
// into the per-function TierDecision (profile-guided compiles only).
func (c *fnCompiler) recordSuper(name string, gated bool) {
	if c.dec == nil {
		return
	}
	c.dec.Super = append(c.dec.Super, SuperinstrChoice{
		Fn:     c.dec.Fn,
		Block:  c.curBlock,
		Name:   name,
		Weight: c.curWeight,
		Gated:  gated,
	})
}

// reg resolves an operand to its register index, interning constants.
// The second result is false for values the function does not define
// (invalid IR); the caller lowers the whole instruction to a trap,
// preserving the tree-walker's use-of-undefined-value fault.
func (c *fnCompiler) reg(v ir.Value) (int32, bool) {
	switch k := v.(type) {
	case *ir.ConstInt:
		return c.constReg(constKey{kind: k.Ty.Kind, i: k.V}, Value{K: k.Ty.Kind, I: k.V}), true
	case *ir.ConstFloat:
		return c.constReg(constKey{kind: k.Ty.Kind, f: k.V}, Value{K: k.Ty.Kind, F: k.V}), true
	case *ir.ConstNull:
		return c.constReg(constKey{kind: ir.Pointer}, Value{K: ir.Pointer}), true
	}
	return c.nb.IndexOf(v)
}

func (c *fnCompiler) constReg(key constKey, v Value) int32 {
	if r, ok := c.constRegs[key]; ok {
		return r
	}
	r := int32(c.nb.NumValues() + len(c.consts))
	c.consts = append(c.consts, v)
	c.constRegs[key] = r
	return r
}

// regs resolves all operands; ok is false if any is undefined.
func (c *fnCompiler) regs(vs []ir.Value) ([]int32, bool) {
	out := make([]int32, len(vs))
	for i, v := range vs {
		r, ok := c.reg(v)
		if !ok {
			return nil, false
		}
		out[i] = r
	}
	return out, true
}

func (c *fnCompiler) dst(in *ir.Instr) int32 {
	if !in.HasResult() {
		return -1
	}
	r, _ := c.nb.IndexOf(in)
	return r
}

func (c *fnCompiler) emit(in *ir.Instr) {
	undef := func(v ir.Value) {
		c.code = append(c.code, instr{op: opTrap, msg: fmt.Sprintf("use of undefined value %s", v.Ident())})
	}
	ops, ok := c.regs(in.Args)
	if !ok {
		for _, v := range in.Args {
			if _, defined := c.reg(v); !defined {
				undef(v)
				return
			}
		}
	}
	switch in.Op {
	case ir.OpAlloca:
		size := in.AllocaElem.Size() * in.AllocaCount
		if in.AllocaSpace == ir.Local {
			slot := int32(len(c.prog.localSizes))
			c.prog.localSizes = append(c.prog.localSizes, size)
			c.code = append(c.code, instr{op: opAllocaLocal, dst: c.dst(in), a: slot, imm: size})
			return
		}
		c.code = append(c.code, instr{op: opAlloca, dst: c.dst(in), sub: uint8(in.AllocaSpace), imm: size})
	case ir.OpLoad:
		c.code = append(c.code, instr{op: opLoad, dst: c.dst(in), a: ops[0], kind: in.Ty.Kind})
	case ir.OpStore:
		c.code = append(c.code, instr{op: opStore, a: ops[0], b: ops[1], kind: in.Args[0].Type().Kind})
	case ir.OpGEP:
		elem := in.Ty.Elem.Size()
		if cv, isConst := ir.ConstIntValue(in.Args[1]); isConst {
			c.code = append(c.code, instr{op: opGEPConst, dst: c.dst(in), a: ops[0], imm: cv * elem})
			return
		}
		c.code = append(c.code, instr{op: opGEP, dst: c.dst(in), a: ops[0], b: ops[1], imm: elem})
	case ir.OpBin:
		// Specialization is part of the fusion layer: disabling "fuse"
		// must yield the plain PR 3 instruction shapes, or the vm-O0
		// baseline the CI speedup guard compares against would be
		// partially optimized.
		if c.fuse {
			if spec, ok := specBin[[2]uint8{uint8(in.BinK), uint8(in.Ty.Kind)}]; ok {
				c.code = append(c.code, instr{op: spec, dst: c.dst(in), a: ops[0], b: ops[1]})
				return
			}
		}
		c.code = append(c.code, instr{op: opBin, dst: c.dst(in), a: ops[0], b: ops[1], sub: uint8(in.BinK), kind: in.Ty.Kind})
	case ir.OpCmp:
		c.code = append(c.code, instr{op: opCmp, dst: c.dst(in), a: ops[0], b: ops[1], sub: uint8(in.CmpK)})
	case ir.OpCast:
		c.code = append(c.code, instr{op: opCast, dst: c.dst(in), a: ops[0], sub: uint8(in.CastK), kind: in.Ty.Kind})
	case ir.OpSelect:
		c.code = append(c.code, instr{op: opSelect, dst: c.dst(in), a: ops[0], b: ops[1], c: ops[2]})
	case ir.OpAtomic:
		c.code = append(c.code, instr{op: opAtomic, dst: c.dst(in), a: ops[0], b: ops[1], sub: uint8(in.AtomK), kind: in.Args[1].Type().Kind})
	case ir.OpBarrier:
		c.code = append(c.code, instr{op: opBarrier})
	case ir.OpCall:
		c.emitCall(in, ops)
	default:
		c.code = append(c.code, instr{op: opTrap, msg: fmt.Sprintf("unsupported opcode %d", in.Op)})
	}
}

// emitTerm lowers a terminator, carrying this block's outgoing phi
// copies: unconditional branches coalesce them into their producers
// where legal and run the rest inline before the jump; conditional
// branches route any phi-bearing side through an edge stub.
func (c *fnCompiler) emitTerm(b *ir.Block, in *ir.Instr, pos map[*ir.Instr]int, next *ir.Block) {
	switch in.Op {
	case ir.OpBr:
		pairs, traps := c.edgePairs(b, in.Then)
		pairs = c.coalescePairs(pairs, pos)
		c.code = append(c.code, traps...)
		c.code = append(c.code, sequentialize(pairs, &c.needScratch)...)
		if c.guide != nil && in.Then == next {
			// Hot-path layout put the target right after this block:
			// fall through instead of jumping.
			return
		}
		at := len(c.code)
		c.code = append(c.code, instr{op: opJump})
		c.fixups = append(c.fixups, fixup{at: at, field: 'i', blk: in.Then, stub: -1})
	case ir.OpCondBr:
		cond, ok := c.reg(in.Args[0])
		if !ok {
			c.code = append(c.code, instr{op: opTrap, msg: fmt.Sprintf("use of undefined value %s", in.Args[0].Ident())})
			return
		}
		at := len(c.code)
		c.code = append(c.code, instr{op: opCondJump, a: cond})
		c.fixEdge(at, 'b', b, in.Then)
		c.fixEdge(at, 'c', b, in.Else)
	case ir.OpRet:
		r := int32(-1)
		if len(in.Args) > 0 {
			var ok bool
			if r, ok = c.reg(in.Args[0]); !ok {
				c.code = append(c.code, instr{op: opTrap, msg: fmt.Sprintf("use of undefined value %s", in.Args[0].Ident())})
				return
			}
		}
		c.code = append(c.code, instr{op: opRet, a: r})
	}
}

// fixEdge records the branch target for one conditional edge: the block
// itself when the edge carries no phi copies, otherwise a fresh stub.
func (c *fnCompiler) fixEdge(at int, field uint8, from, to *ir.Block) {
	pairs, traps := c.edgePairs(from, to)
	moves := append(traps, sequentialize(pairs, &c.needScratch)...)
	if len(moves) == 0 {
		c.fixups = append(c.fixups, fixup{at: at, field: field, blk: to, stub: -1})
		return
	}
	c.stubs = append(c.stubs, edgeStub{moves: moves, to: to})
	c.fixups = append(c.fixups, fixup{at: at, field: field, stub: len(c.stubs) - 1})
}

// movePair is one pending phi copy of an edge, with the IR value behind
// the source register (the coalescer needs its defining instruction).
type movePair struct {
	dst, src int32
	val      ir.Value
}

// edgePairs collects the parallel copies of the from→to edge: one per
// phi in `to`. Arms the compiler cannot resolve lower to traps.
func (c *fnCompiler) edgePairs(from, to *ir.Block) (pairs []movePair, traps []instr) {
	for _, phi := range to.Phis() {
		v := phi.IncomingFor(from)
		if v == nil {
			traps = append(traps, instr{op: opTrap, msg: fmt.Sprintf("phi in %s has no incoming for edge from %s", to.Name, from.Name)})
			continue
		}
		src, ok := c.reg(v)
		if !ok {
			traps = append(traps, instr{op: opTrap, msg: fmt.Sprintf("use of undefined value %s", v.Ident())})
			continue
		}
		dst := c.dst(phi)
		if dst != src {
			pairs = append(pairs, movePair{dst: dst, src: src, val: v})
		}
	}
	return pairs, traps
}

// coalescePairs eliminates copies on an UNCONDITIONAL edge by
// retargeting the source's producer to write the phi register directly.
// Legal when the producer sits in this block (its write becomes the
// copy, just earlier), its result has no other use, and the phi
// register is neither read nor written by anything after the producer —
// including the other pending copies of this edge, whose parallel reads
// must still see the old value. Conditional edges never coalesce: the
// producer executes on both paths, but the copy belongs to one.
func (c *fnCompiler) coalescePairs(pairs []movePair, pos map[*ir.Instr]int) []movePair {
	kept := pairs[:0]
	for i, p := range pairs {
		si, ok := p.val.(*ir.Instr)
		if !ok || c.uses[si] != 1 {
			kept = append(kept, p)
			continue
		}
		k, emitted := pos[si]
		if !emitted || c.code[k].dst != p.src {
			kept = append(kept, p)
			continue
		}
		hazard := false
		for j := k + 1; j < len(c.code); j++ {
			if readsReg(&c.code[j], p.dst) || c.code[j].dst == p.dst {
				hazard = true
				break
			}
		}
		if !hazard {
			for j, o := range pairs {
				if j != i && o.src == p.dst {
					hazard = true
					break
				}
			}
		}
		if hazard {
			kept = append(kept, p)
			continue
		}
		c.code[k].dst = p.dst
	}
	return kept
}

// readsReg reports whether the instruction reads register r (jump
// targets and local-slot indices are not register reads).
func readsReg(in *instr, r int32) bool {
	switch in.op {
	case opAlloca, opAllocaLocal, opBarrier, opJump, opTrap:
		return false
	case opLoad, opGEPConst, opCast, opCondJump, opMove, opLoadOff:
		return in.a == r
	case opStore, opGEP, opBin, opCmp, opAtomic, opCmpJump, opLoadIdx,
		opAddI32, opSubI32, opMulI32, opAndI32, opOrI32, opXorI32,
		opAddI64, opAddF32, opSubF32, opMulF32, opDivF32:
		return in.a == r || in.b == r
	case opSelect, opBinStore, opLoadBinStore, opBinBin:
		return in.a == r || in.b == r || in.c == r
	case opBinCmpJump:
		return in.a == r || in.b == r || in.args[1] == r
	case opWI:
		return in.a >= 0 && in.a == r
	case opMath:
		return in.a == r || (in.b >= 0 && in.b == r)
	case opRet:
		return in.a >= 0 && in.a == r
	case opCall:
		for _, a := range in.args {
			if a == r {
				return true
			}
		}
		return false
	}
	return true // unknown op: assume it reads everything
}

// sequentialize orders an edge's parallel copies so no copy clobbers a
// source another copy still needs; cycles break through the scratch
// register.
func sequentialize(pending []movePair, needScratch *bool) []instr {
	var out []instr
	for len(pending) > 0 {
		emitted := false
		for i, m := range pending {
			blocked := false
			for j, o := range pending {
				if j != i && o.src == m.dst {
					blocked = true
					break
				}
			}
			if !blocked {
				out = append(out, instr{op: opMove, dst: m.dst, a: m.src})
				pending = append(pending[:i], pending[i+1:]...)
				emitted = true
				break
			}
		}
		if !emitted {
			// Every pending destination is still someone's source: a
			// copy cycle. Save one destination's old value in the
			// scratch register and retarget its readers there.
			*needScratch = true
			d := pending[0].dst
			out = append(out, instr{op: opMove, dst: scratchMark, a: d})
			for i := range pending {
				if pending[i].src == d {
					pending[i].src = scratchMark
				}
			}
		}
	}
	return out
}

// scratchMark is a placeholder register index for the phi-cycle scratch
// slot; it is rewritten to the real (post-constant-tail) index once the
// function's constant pool is final.
const scratchMark = int32(-2)

// threadJumps replaces each opJump whose (chased) target is a lone
// control instruction — another jump, a conditional jump, a return or a
// trap — with a copy of that instruction. Executing the copy is
// equivalent to jumping there first (none of these fall through, and
// the registers they read are the same either way), and it removes one
// dispatch per loop iteration: the back-edge jump of every counted loop
// lands directly on the loop test's fused opCmpJump.
func (c *fnCompiler) threadJumps() {
	// Resolve jump→jump chains first, bounded to stay clear of
	// jump-to-self (an intentionally empty infinite loop).
	chase := func(pc int64) int64 {
		for hops := 0; hops < 8; hops++ {
			t := c.code[pc]
			if t.op != opJump || t.imm == pc {
				break
			}
			pc = t.imm
		}
		return pc
	}
	for i := range c.code {
		in := &c.code[i]
		switch in.op {
		case opJump:
			in.imm = chase(in.imm)
		case opCondJump:
			in.b = int32(chase(int64(in.b)))
			in.c = int32(chase(int64(in.c)))
		case opCmpJump:
			in.c = int32(chase(int64(in.c)))
			in.imm = chase(in.imm)
		case opBinCmpJump:
			in.c = int32(chase(int64(in.c)))
			in.imm = chase(in.imm)
		}
	}
	for i := range c.code {
		in := &c.code[i]
		if in.op != opJump {
			continue
		}
		switch t := c.code[in.imm]; t.op {
		case opCmpJump, opCondJump, opRet, opTrap:
			*in = t
		}
	}
}

// emitCall pre-binds the callee: defined functions become direct opCall
// to their compiled form; declarations resolve to work-item or math
// builtin opcodes with names, dims and kinds resolved now instead of per
// execution.
func (c *fnCompiler) emitCall(in *ir.Instr, ops []int32) {
	callee := c.prog.src.Lookup(in.Callee)
	if callee == nil {
		c.code = append(c.code, instr{op: opTrap, msg: fmt.Sprintf("call to unknown function %q", in.Callee)})
		return
	}
	if !callee.IsDecl() {
		c.code = append(c.code, instr{op: opCall, dst: c.dst(in), fn: c.prog.fns[callee.Name], args: ops})
		return
	}
	name := in.Callee
	if code, ok := wiBuiltins[name]; ok {
		// Dimension argument: constants fold into imm (with the same
		// clamp the reference engine applies); non-constants read a
		// register at runtime; pointer or absent arguments mean dim 0.
		ins := instr{op: opWI, dst: c.dst(in), sub: code, a: -1}
		if len(in.Args) == 1 && in.Args[0].Type().Kind != ir.Pointer {
			if cv, isConst := ir.ConstIntValue(in.Args[0]); isConst {
				if cv < 0 || cv > 2 {
					cv = 0
				}
				ins.imm = cv
			} else {
				ins.a = ops[0]
			}
		}
		c.code = append(c.code, ins)
		return
	}
	if strings.HasPrefix(name, "__clc_") {
		op, kind, err := parseMathBuiltin(name)
		if err != "" {
			c.code = append(c.code, instr{op: opTrap, msg: err})
			return
		}
		ins := instr{op: opMath, dst: c.dst(in), sub: op, kind: kind, a: ops[0], b: -1}
		if len(ops) > 1 {
			ins.b = ops[1]
		}
		c.code = append(c.code, ins)
		return
	}
	c.code = append(c.code, instr{op: opTrap, msg: fmt.Sprintf("unknown builtin %q", name)})
}

// kindTypes maps a value kind back to a type singleton for the shared
// load/store/binop helpers (which only inspect Kind and Size).
var kindTypes = func() [ir.Pointer + 1]*ir.Type {
	var t [ir.Pointer + 1]*ir.Type
	t[ir.Void] = ir.VoidT
	t[ir.Bool] = ir.BoolT
	t[ir.I32] = ir.I32T
	t[ir.I64] = ir.I64T
	t[ir.F32] = ir.F32T
	t[ir.F64] = ir.F64T
	t[ir.Pointer] = ir.PointerTo(ir.I64T, ir.Global)
	return t
}()
