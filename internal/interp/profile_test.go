package interp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ir"
)

// profSrc has the profile-interesting shapes: a data-dependent loop, a
// divergent branch, a helper call and a barrier.
const profSrc = `
int helper(int x) { return x * 3 + 1; }

kernel void prof(global const int* in, global int* out)
{
    local int buf[32];
    int i = (int)get_global_id(0);
    int lid = (int)get_local_id(0);
    buf[lid] = in[i];
    barrier(1);
    int acc = 0;
    int j;
    for (j = 0; j < lid + 1; ++j)
        acc += buf[(lid + j) % 32];
    if (i % 2 == 0)
        acc = helper(acc);
    out[i] = acc;
}
`

func runProf(t *testing.T, prof *Profiler) []int32 {
	t.Helper()
	m := compile(t, profSrc)
	m.Profiler = prof
	const n, wg = 256, 32
	in := m.NewRegion(n*4, ir.Global)
	out := m.NewRegion(n*4, ir.Global)
	iv := make([]int32, n)
	for i := range iv {
		iv[i] = int32(i%13 - 6)
	}
	in.WriteInt32s(0, iv)
	args := []Value{{K: ir.Pointer, P: Ptr{R: in}}, {K: ir.Pointer, P: Ptr{R: out}}}
	if err := m.Launch("prof", args, ND1(n, wg)); err != nil {
		t.Fatalf("launch: %v", err)
	}
	return out.ReadInt32s(0, n)
}

// TestProfiledExecutionParity holds the profiled dispatch loop
// byte-identical to the unprofiled one (SampleEvery=1 sends every group
// through the counting twin) and checks the collected counts are
// plausible and complete.
func TestProfiledExecutionParity(t *testing.T) {
	ref := runProf(t, nil)
	prof := NewProfiler(ProfileOptions{PerOpcode: true, PerBlock: true, SampleEvery: 1})
	got := runProf(t, prof)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("out[%d]: profiled %d, unprofiled %d", i, got[i], ref[i])
		}
	}

	snaps := prof.Snapshot()
	if len(snaps) != 1 || snaps[0].Kernel != "prof" {
		t.Fatalf("snapshot = %+v, want one kernel 'prof'", snaps)
	}
	s := snaps[0]
	const groups = 256 / 32
	if s.Groups != groups || s.Sampled != groups {
		t.Fatalf("groups %d sampled %d, want %d at SampleEvery=1", s.Groups, s.Sampled, groups)
	}
	if s.Instrs == 0 {
		t.Fatal("no instructions counted")
	}
	// Every work-item hits the one barrier exactly once.
	if s.Barriers != 256 {
		t.Fatalf("barriers = %d, want 256", s.Barriers)
	}
	if s.Faults != 0 {
		t.Fatalf("faults = %d, want 0", s.Faults)
	}
	var opTotal int64
	for _, oc := range s.Opcodes {
		opTotal += oc.Count
	}
	if opTotal != s.Instrs {
		t.Fatalf("opcode counts sum to %d, instrs %d", opTotal, s.Instrs)
	}
	if len(s.Blocks) == 0 {
		t.Fatal("no block entries counted")
	}
	// The loop body dominates: its block must out-hit function entry.
	var maxHits int64
	for _, bc := range s.Blocks {
		if bc.Hits > maxHits {
			maxHits = bc.Hits
		}
	}
	// 256 items x avg 16.5 loop iterations >> 256 entries.
	if maxHits < 1000 {
		t.Fatalf("hottest block has %d hits, expected a dominant loop body", maxHits)
	}

	var buf bytes.Buffer
	prof.Dump(&buf)
	for _, want := range []string{"kernel prof:", "opcodes:", "blocks:", "barrier"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Dump missing %q:\n%s", want, buf.String())
		}
	}
}

// TestProfilerSampling checks the 1-in-N group sampling: totals-only
// profiling of a 64-group launch at SampleEvery=16 samples exactly 4
// groups, and a single-group launch samples none.
func TestProfilerSampling(t *testing.T) {
	prof := NewProfiler(ProfileOptions{SampleEvery: 16})
	runProf(t, prof) // 8 groups: not enough for a sample yet
	s := prof.Snapshot()[0]
	if s.Groups != 8 || s.Sampled != 0 {
		t.Fatalf("groups %d sampled %d, want 8/0", s.Groups, s.Sampled)
	}
	for i := 0; i < 7; i++ {
		runProf(t, prof)
	}
	s = prof.Snapshot()[0]
	if s.Groups != 64 || s.Sampled != 4 {
		t.Fatalf("groups %d sampled %d, want 64/4", s.Groups, s.Sampled)
	}
	if s.Instrs == 0 {
		t.Fatal("sampled groups counted no instructions")
	}
	if len(s.Opcodes) != 0 || len(s.Blocks) != 0 {
		t.Fatal("totals-only options collected per-opcode/per-block data")
	}
}

// TestProfilerFaultCounting checks faults are recorded even for
// unsampled groups.
func TestProfilerFaultCounting(t *testing.T) {
	const src = `
kernel void oops(global int* out) { out[get_global_id(0)] = out[0] / (int)get_global_id(0); }
`
	m := compile(t, src)
	prof := NewProfiler(ProfileOptions{SampleEvery: 1 << 20}) // never samples
	m.Profiler = prof
	out := m.NewRegion(64*4, ir.Global)
	err := m.Launch("oops", []Value{{K: ir.Pointer, P: Ptr{R: out}}}, ND1(64, 64))
	if err == nil {
		t.Fatal("expected division-by-zero fault")
	}
	s := prof.Snapshot()[0]
	if s.Faults != 1 {
		t.Fatalf("faults = %d, want 1", s.Faults)
	}
	if s.Sampled != 0 {
		t.Fatalf("sampled = %d, want 0", s.Sampled)
	}
}
