package interp

import (
	"fmt"

	"repro/internal/ir"
)

// Warp-style batched work-item execution: the work-items of a group run
// in fixed-width batches ("warps") with ONE fetch/decode per instruction
// per warp. Register homes are split by the uniformity analysis
// (warp_compile.go): warp-invariant registers live in a single shared
// file per warp and their instructions execute once per warp (wmOnce);
// divergent registers live in each lane's own file and their
// instructions loop over the live lanes (wmLane). At a branch on a
// divergent condition, a call, or a trap, the warp SPILLS: the shared
// registers are broadcast into every lane file and the lanes continue
// on the unmodified per-item scalar path (vm.go), re-forming the warp
// at the next barrier when every surviving lane arrives at the same
// resume pc with a single frame.
//
// Equivalence with the cooperative scalar engine relies on the same
// contract the scalar engine itself shares with the fully concurrent
// tree-walker: between barriers, work-items of a group do not race on
// memory (racing kernels are undefined on any engine and on real
// hardware). Under that contract, lockstep vector interleaving and
// run-to-barrier scalar interleaving produce byte-identical memory.

// WarpLaunchStats summarizes the warp execution of one VM launch.
// Occupancy is Lanes / (Warps * Width); Spills counts divergence
// fallbacks onto the scalar per-item path, Reforms the barrier
// re-formations back into vector dispatch.
type WarpLaunchStats struct {
	Kernel  string
	Width   int
	Warps   int64
	Lanes   int64
	Spills  int64
	Reforms int64
}

// WarpStatsSink receives per-launch warp statistics (Machine.WarpStats);
// the accelOS runtime adapts these onto its telemetry registry.
type WarpStatsSink interface {
	ObserveWarpLaunch(WarpLaunchStats)
}

// flushWarpStats publishes the launch's warp counters into the kernel
// profile and the machine's stats sink once the launch retires.
func (l *launchCtx) flushWarpStats() {
	w := l.warps.Load()
	if w == 0 {
		return
	}
	st := WarpLaunchStats{
		Kernel:  l.fn.Name,
		Width:   l.prog.warpWidth,
		Warps:   w,
		Lanes:   l.warpLanes.Load(),
		Spills:  l.warpSpills.Load(),
		Reforms: l.warpReforms.Load(),
	}
	if l.kp != nil {
		l.kp.warps.Add(st.Warps)
		l.kp.warpLanes.Add(st.Lanes)
		l.kp.warpSpills.Add(st.Spills)
		l.kp.warpReforms.Add(st.Reforms)
	}
	if s := l.m.WarpStats; s != nil {
		s.ObserveWarpLaunch(st)
	}
}

// warp is one lane batch of a work-group. items holds the surviving
// (non-retired) lanes in local-id order; uregp is the shared file the
// uniform registers live in while the warp executes in vector mode.
type warp struct {
	items  []*wiState
	width  int
	uregp  *[]Value
	pc     int32
	steps  int64
	vector bool
}

// runGroupWarp is the warp-mode replacement for runGroupVM's round
// loop: the group's items are partitioned into warps, and each round
// every warp advances to its next barrier — in vector dispatch while
// control flow is uniform, on the scalar per-item path after a
// divergence spill.
func (l *launchCtx) runGroupWarp(gr *groupRunner, g *vmGroup, size, width int, argPatch []Value) error {
	kcf := l.kcf
	warps := make([]*warp, 0, (size+width-1)/width)
	for base := 0; base < size; base += width {
		n := size - base
		if n > width {
			n = width
		}
		w := &warp{width: width, uregp: kcf.getRegs(), pc: 0, vector: true}
		uregs := *w.uregp
		copy(uregs, l.args)
		for pi, la := range l.locals {
			uregs[la.idx] = argPatch[pi]
		}
		for i := base; i < base+n; i++ {
			w.items = append(w.items, &gr.items[i])
		}
		warps = append(warps, w)
		l.warps.Add(1)
		l.warpLanes.Add(int64(n))
	}
	defer func() {
		for _, w := range warps {
			kcf.putRegs(w.uregp)
		}
	}()
	if gp := g.prof; gp != nil && gp.perBlock {
		for _, w := range warps {
			gp.enterBlockN(kcf, 0, int64(len(w.items)))
		}
	}

	live := size
	for live > 0 {
		for _, w := range warps {
			if len(w.items) == 0 {
				continue
			}
			if !w.vector && g.tryReform(w) {
				l.warpReforms.Add(1)
			}
			if w.vector {
				if err := g.warpResume(w); err != nil {
					return l.groupFault(gr, g, err)
				}
				if w.vector {
					// The warp stayed uniform: it either arrived at a
					// barrier or retired wholesale.
					if w.items[0].status == wiDone {
						live -= len(w.items)
						w.items = w.items[:0]
					}
					continue
				}
				l.warpSpills.Add(1)
				// Spilled mid-round: the lanes still owe this round
				// their run to the next barrier — fall through.
			}
			idx := 0
			for idx < len(w.items) {
				wi := w.items[idx]
				if err := g.resume(wi); err != nil {
					g.faultWI = wi
					return l.groupFault(gr, g, err)
				}
				if wi.status == wiDone {
					w.items = append(w.items[:idx], w.items[idx+1:]...)
					live--
					continue
				}
				idx++
			}
		}
	}
	if g.prof != nil {
		l.kp.flush(g.prof)
	}
	return nil
}

// groupFault is the shared fault path of the scalar and warp group
// runners: release pooled state, count the fault, and tag the error
// with the faulting work-item's global id (g.faultWI).
func (l *launchCtx) groupFault(gr *groupRunner, g *vmGroup, err error) error {
	wi := g.faultWI
	var lid [3]int64
	if wi != nil {
		lid = wi.lid
	}
	gid := [3]int64{
		g.group[0]*l.nd.Local[0] + lid[0],
		g.group[1]*l.nd.Local[1] + lid[1],
		g.group[2]*l.nd.Local[2] + lid[2],
	}
	g.release(gr)
	if l.kp != nil {
		l.kp.faults.Add(1)
		if g.prof != nil {
			l.kp.flush(g.prof)
		}
	}
	return fmt.Errorf("interp: work-item global id (%d,%d,%d): %w", gid[0], gid[1], gid[2], err)
}

// tryReform re-enters vector dispatch after a divergence spill: legal
// when every surviving lane is suspended at the same barrier-resume pc
// with a single frame. The shared file is re-gathered from lane 0 —
// for any uniform register whose value can still be read, SSA
// dominance guarantees every surviving lane executed its defining
// instruction with warp-invariant operands, so all lane copies agree.
func (g *vmGroup) tryReform(w *warp) bool {
	cf := g.l.kcf
	pc := int32(-1)
	for _, wi := range w.items {
		if wi.status != wiBarrier || len(wi.frames) != 1 {
			return false
		}
		fpc := wi.frames[0].pc
		if pc < 0 {
			pc = fpc
		} else if fpc != pc {
			return false
		}
	}
	if pc < 0 || !cf.reformPC[pc] {
		return false
	}
	uregs := *w.uregp
	l0 := *w.items[0].frames[0].regp
	for _, r := range cf.uniformRegs {
		uregs[r] = l0[r]
	}
	w.pc = pc
	w.vector = true
	return true
}

// warpResume runs a warp's vector dispatch until its next suspension
// point (barrier, wholesale return, or divergence spill), converting
// traps into errors. The faulting lane is left in g.faultWI.
func (g *vmGroup) warpResume(w *warp) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(trap); ok {
				err = t
				return
			}
			err = fmt.Errorf("interp: panic: %v", r)
		}
	}()
	g.warpExec(w)
	return nil
}

// warpSpill broadcasts the shared registers into every lane file and
// rewinds the lanes to re-execute pc on the scalar path.
func (g *vmGroup) warpSpill(w *warp, pc int32) {
	cf := g.l.kcf
	uregs := *w.uregp
	for _, wi := range w.items {
		lr := *wi.frames[0].regp
		for _, r := range cf.uniformRegs {
			lr[r] = uregs[r]
		}
		wi.frames[0].pc = pc
		wi.status = wiRunning
	}
	w.vector = false
}

// warpExec is the vector dispatch loop: one fetch/decode per
// instruction per warp. Instruction cost is charged per lane (n steps
// per dispatch), so the launch instruction budget is engine-invariant;
// the same holds for the sampled execution profile counts.
func (g *vmGroup) warpExec(w *warp) {
	l := g.l
	m := l.m
	cf := l.kcf
	code := cf.code
	wmode := cf.wmode
	uniform := cf.uniform
	uregs := *w.uregp
	lanes := w.items
	n := int64(len(lanes))
	l0regs := *lanes[0].frames[0].regp
	pc := w.pc
	steps := w.steps
	gp := g.prof
	g.faultWI = lanes[0]

	// uget resolves a wmOnce operand: uniform registers live in the
	// shared file; the only divergent-homed operand a once-instruction
	// can read is the phi-cycle scratch, whose lane-0 copy is
	// warp-invariant exactly when the analysis proved the result
	// uniform.
	uget := func(r int32) *Value {
		if uniform[r] {
			return &uregs[r]
		}
		return &l0regs[r]
	}

	for {
		in := &code[pc]
		mode := wmode[pc]
		if mode == wmSpill {
			w.pc = pc
			w.steps = 0
			if steps > 0 {
				l.addSteps(steps)
			}
			g.warpSpill(w, pc)
			return
		}
		pc++
		steps += n
		if steps >= stepBatch {
			l.addSteps(steps)
			steps = 0
		}
		if gp != nil {
			gp.instrs += n
			if gp.perOp {
				gp.opcodes[in.op] += n
			}
		}
		switch mode {
		case wmOnce:
			g.faultWI = lanes[0]
			switch in.op {
			case opAllocaLocal:
				r := g.locals[in.a]
				if r == nil {
					r = g.ar.alloc(in.imm, ir.Local)
					g.locals[in.a] = r
				}
				uregs[in.dst] = Value{K: ir.Pointer, P: Ptr{R: r}}
			case opStore:
				m.store(kindTypes[in.kind], *uget(in.a), uget(in.b).P)
			case opBinStore:
				m.store(kindTypes[in.kind], binOp(ir.BinKind(in.sub), kindTypes[in.kind], *uget(in.a), *uget(in.b)), uget(in.c).P)
			case opGEP:
				base := uget(in.a).P
				if base.IsNull() {
					panic(trap{"gep on null pointer"})
				}
				uregs[in.dst] = Value{K: ir.Pointer, P: Ptr{R: base.R, Off: base.Off + uget(in.b).I*in.imm}}
			case opGEPConst:
				base := uget(in.a).P
				if base.IsNull() {
					panic(trap{"gep on null pointer"})
				}
				uregs[in.dst] = Value{K: ir.Pointer, P: Ptr{R: base.R, Off: base.Off + in.imm}}
			case opBin:
				uregs[in.dst] = fastBin(ir.BinKind(in.sub), in.kind, uget(in.a), uget(in.b))
			case opCmp:
				uregs[in.dst] = BoolV(fastCmp(ir.CmpPred(in.sub), uget(in.a), uget(in.b)))
			case opMove:
				uregs[in.dst] = *uget(in.a)
			case opAddI32:
				uregs[in.dst] = Value{K: ir.I32, I: int64(int32(uget(in.a).I + uget(in.b).I))}
			case opSubI32:
				uregs[in.dst] = Value{K: ir.I32, I: int64(int32(uget(in.a).I - uget(in.b).I))}
			case opMulI32:
				uregs[in.dst] = Value{K: ir.I32, I: int64(int32(uget(in.a).I * uget(in.b).I))}
			case opAndI32:
				uregs[in.dst] = Value{K: ir.I32, I: int64(int32(uget(in.a).I & uget(in.b).I))}
			case opOrI32:
				uregs[in.dst] = Value{K: ir.I32, I: int64(int32(uget(in.a).I | uget(in.b).I))}
			case opXorI32:
				uregs[in.dst] = Value{K: ir.I32, I: int64(int32(uget(in.a).I ^ uget(in.b).I))}
			case opAddI64:
				uregs[in.dst] = Value{K: ir.I64, I: uget(in.a).I + uget(in.b).I}
			case opAddF32:
				uregs[in.dst] = Value{K: ir.F32, F: float64(float32(uget(in.a).F + uget(in.b).F))}
			case opSubF32:
				uregs[in.dst] = Value{K: ir.F32, F: float64(float32(uget(in.a).F - uget(in.b).F))}
			case opMulF32:
				uregs[in.dst] = Value{K: ir.F32, F: float64(float32(uget(in.a).F * uget(in.b).F))}
			case opDivF32:
				uregs[in.dst] = Value{K: ir.F32, F: float64(float32(uget(in.a).F / uget(in.b).F))}
			case opCast:
				uregs[in.dst] = castOp(ir.CastKind(in.sub), kindTypes[in.kind], *uget(in.a))
			case opSelect:
				if uget(in.a).Bool() {
					uregs[in.dst] = *uget(in.b)
				} else {
					uregs[in.dst] = *uget(in.c)
				}
			case opWI:
				dim := in.imm
				if in.a >= 0 {
					dim = uget(in.a).I
					if dim < 0 || dim > 2 {
						dim = 0
					}
				}
				var v Value
				switch in.sub {
				case wiGroupID:
					v = LongV(g.group[dim])
				case wiNumGroups:
					v = LongV(l.ng[dim])
				case wiLocalSize:
					v = LongV(l.nd.Local[dim])
				case wiGlobalSize:
					v = LongV(l.nd.Global[dim])
				case wiGlobalOffset:
					v = LongV(0)
				case wiWorkDim:
					v = IntV(int64(l.nd.Dims))
				}
				uregs[in.dst] = v
			case opMath:
				x := uget(in.a).F
				var y float64
				if in.b >= 0 {
					y = uget(in.b).F
				}
				uregs[in.dst] = evalMath(in.sub, in.kind, x, y)
			case opJump:
				pc = int32(in.imm)
				if gp != nil && gp.perBlock {
					gp.enterBlockN(cf, pc, n)
				}
			case opCondJump:
				if uget(in.a).Bool() {
					pc = in.b
				} else {
					pc = in.c
				}
				if gp != nil && gp.perBlock {
					gp.enterBlockN(cf, pc, n)
				}
			case opCmpJump:
				if fastCmp(ir.CmpPred(in.sub), uget(in.a), uget(in.b)) {
					pc = in.c
				} else {
					pc = int32(in.imm)
				}
				if gp != nil && gp.perBlock {
					gp.enterBlockN(cf, pc, n)
				}
			case opBinBin:
				t := i32Bin(ir.BinKind(in.sub), uget(in.a).I, uget(in.b).I)
				var r int64
				if in.imm&bbSwapped != 0 {
					r = i32Bin(ir.BinKind(in.imm&0xff), uget(in.c).I, t)
				} else {
					r = i32Bin(ir.BinKind(in.imm&0xff), t, uget(in.c).I)
				}
				uregs[in.dst] = Value{K: ir.I32, I: r}
			case opBinCmpJump:
				v := i32Bin(ir.BinKind(in.sub), uget(in.a).I, uget(in.b).I)
				uregs[in.dst] = Value{K: ir.I32, I: v}
				x, y := v, uget(in.args[1]).I
				if in.args[0]&bcjSwapped != 0 {
					x, y = y, x
				}
				if i32Cmp(ir.CmpPred(in.args[0]&0xffff), x, y) {
					pc = in.c
				} else {
					pc = int32(in.imm)
				}
				if gp != nil && gp.perBlock {
					gp.enterBlockN(cf, pc, n)
				}
			default:
				panic(trap{"warp: once-mode dispatch of unexpected opcode"})
			}

		case wmLane:
			for _, wi := range lanes {
				g.faultWI = wi
				lr := *wi.frames[0].regp
				switch in.op {
				case opAlloca:
					r := g.ar.alloc(in.imm, ir.AddrSpace(in.sub))
					lr[in.dst] = Value{K: ir.Pointer, P: Ptr{R: r}}
				case opAllocaLocal:
					r := g.locals[in.a]
					if r == nil {
						r = g.ar.alloc(in.imm, ir.Local)
						g.locals[in.a] = r
					}
					lr[in.dst] = Value{K: ir.Pointer, P: Ptr{R: r}}
				case opLoad:
					lr[in.dst] = m.load(kindTypes[in.kind], g.lv(lr, uregs, in.a).P)
				case opStore:
					m.store(kindTypes[in.kind], *g.lv(lr, uregs, in.a), g.lv(lr, uregs, in.b).P)
				case opGEP:
					base := g.lv(lr, uregs, in.a).P
					if base.IsNull() {
						panic(trap{"gep on null pointer"})
					}
					lr[in.dst] = Value{K: ir.Pointer, P: Ptr{R: base.R, Off: base.Off + g.lv(lr, uregs, in.b).I*in.imm}}
				case opGEPConst:
					base := g.lv(lr, uregs, in.a).P
					if base.IsNull() {
						panic(trap{"gep on null pointer"})
					}
					lr[in.dst] = Value{K: ir.Pointer, P: Ptr{R: base.R, Off: base.Off + in.imm}}
				case opBin:
					lr[in.dst] = fastBin(ir.BinKind(in.sub), in.kind, g.lv(lr, uregs, in.a), g.lv(lr, uregs, in.b))
				case opBinBin:
					t := i32Bin(ir.BinKind(in.sub), g.lv(lr, uregs, in.a).I, g.lv(lr, uregs, in.b).I)
					var r int64
					if in.imm&bbSwapped != 0 {
						r = i32Bin(ir.BinKind(in.imm&0xff), g.lv(lr, uregs, in.c).I, t)
					} else {
						r = i32Bin(ir.BinKind(in.imm&0xff), t, g.lv(lr, uregs, in.c).I)
					}
					lr[in.dst] = Value{K: ir.I32, I: r}
				case opCmp:
					lr[in.dst] = BoolV(fastCmp(ir.CmpPred(in.sub), g.lv(lr, uregs, in.a), g.lv(lr, uregs, in.b)))
				case opMove:
					lr[in.dst] = *g.lv(lr, uregs, in.a)
				case opAddI32:
					lr[in.dst] = Value{K: ir.I32, I: int64(int32(g.lv(lr, uregs, in.a).I + g.lv(lr, uregs, in.b).I))}
				case opSubI32:
					lr[in.dst] = Value{K: ir.I32, I: int64(int32(g.lv(lr, uregs, in.a).I - g.lv(lr, uregs, in.b).I))}
				case opMulI32:
					lr[in.dst] = Value{K: ir.I32, I: int64(int32(g.lv(lr, uregs, in.a).I * g.lv(lr, uregs, in.b).I))}
				case opAndI32:
					lr[in.dst] = Value{K: ir.I32, I: int64(int32(g.lv(lr, uregs, in.a).I & g.lv(lr, uregs, in.b).I))}
				case opOrI32:
					lr[in.dst] = Value{K: ir.I32, I: int64(int32(g.lv(lr, uregs, in.a).I | g.lv(lr, uregs, in.b).I))}
				case opXorI32:
					lr[in.dst] = Value{K: ir.I32, I: int64(int32(g.lv(lr, uregs, in.a).I ^ g.lv(lr, uregs, in.b).I))}
				case opAddI64:
					lr[in.dst] = Value{K: ir.I64, I: g.lv(lr, uregs, in.a).I + g.lv(lr, uregs, in.b).I}
				case opAddF32:
					lr[in.dst] = Value{K: ir.F32, F: float64(float32(g.lv(lr, uregs, in.a).F + g.lv(lr, uregs, in.b).F))}
				case opSubF32:
					lr[in.dst] = Value{K: ir.F32, F: float64(float32(g.lv(lr, uregs, in.a).F - g.lv(lr, uregs, in.b).F))}
				case opMulF32:
					lr[in.dst] = Value{K: ir.F32, F: float64(float32(g.lv(lr, uregs, in.a).F * g.lv(lr, uregs, in.b).F))}
				case opDivF32:
					lr[in.dst] = Value{K: ir.F32, F: float64(float32(g.lv(lr, uregs, in.a).F / g.lv(lr, uregs, in.b).F))}
				case opBinStore:
					m.store(kindTypes[in.kind], binOp(ir.BinKind(in.sub), kindTypes[in.kind], *g.lv(lr, uregs, in.a), *g.lv(lr, uregs, in.b)), g.lv(lr, uregs, in.c).P)
				case opLoadBinStore:
					t := kindTypes[in.kind]
					v := m.load(t, g.lv(lr, uregs, in.a).P)
					x := *g.lv(lr, uregs, in.b)
					if in.sub&lbsSwapped != 0 {
						v, x = x, v
					}
					m.store(t, binOp(ir.BinKind(in.sub&^lbsSwapped), t, v, x), g.lv(lr, uregs, in.c).P)
				case opLoadIdx:
					base := g.lv(lr, uregs, in.a).P
					if base.IsNull() {
						panic(trap{"gep on null pointer"})
					}
					lr[in.dst] = m.load(kindTypes[in.kind], Ptr{R: base.R, Off: base.Off + g.lv(lr, uregs, in.b).I*in.imm})
				case opLoadOff:
					base := g.lv(lr, uregs, in.a).P
					if base.IsNull() {
						panic(trap{"gep on null pointer"})
					}
					lr[in.dst] = m.load(kindTypes[in.kind], Ptr{R: base.R, Off: base.Off + in.imm})
				case opCast:
					lr[in.dst] = castOp(ir.CastKind(in.sub), kindTypes[in.kind], *g.lv(lr, uregs, in.a))
				case opSelect:
					if g.lv(lr, uregs, in.a).Bool() {
						lr[in.dst] = *g.lv(lr, uregs, in.b)
					} else {
						lr[in.dst] = *g.lv(lr, uregs, in.c)
					}
				case opAtomic:
					lr[in.dst] = m.atomicRMW(ir.AtomicKind(in.sub), kindTypes[in.kind], g.lv(lr, uregs, in.a).P, *g.lv(lr, uregs, in.b))
				case opWI:
					dim := in.imm
					if in.a >= 0 {
						dim = g.lv(lr, uregs, in.a).I
						if dim < 0 || dim > 2 {
							dim = 0
						}
					}
					var v Value
					switch in.sub {
					case wiGlobalID:
						v = LongV(g.group[dim]*l.nd.Local[dim] + wi.lid[dim])
					case wiLocalID:
						v = LongV(wi.lid[dim])
					case wiGroupID:
						v = LongV(g.group[dim])
					case wiNumGroups:
						v = LongV(l.ng[dim])
					case wiLocalSize:
						v = LongV(l.nd.Local[dim])
					case wiGlobalSize:
						v = LongV(l.nd.Global[dim])
					case wiGlobalOffset:
						v = LongV(0)
					case wiWorkDim:
						v = IntV(int64(l.nd.Dims))
					}
					lr[in.dst] = v
				case opMath:
					x := g.lv(lr, uregs, in.a).F
					var y float64
					if in.b >= 0 {
						y = g.lv(lr, uregs, in.b).F
					}
					lr[in.dst] = evalMath(in.sub, in.kind, x, y)
				default:
					panic(trap{"warp: lane-mode dispatch of unexpected opcode"})
				}
			}

		case wmBarrier:
			if gp != nil {
				gp.barriers += n
			}
			for _, wi := range lanes {
				wi.frames[0].pc = pc
				wi.status = wiBarrier
			}
			w.pc = pc
			w.steps = steps
			return

		case wmRet:
			for _, wi := range lanes {
				cf.putRegs(wi.frames[0].regp)
				wi.frames[0] = vmFrame{}
				wi.frames = wi.frames[:0]
				wi.status = wiDone
			}
			w.steps = 0
			if steps > 0 {
				l.addSteps(steps)
			}
			return
		}
	}
}

// lv resolves a wmLane operand register to its home: the warp's shared
// file for uniform registers, the lane file for divergent ones.
func (g *vmGroup) lv(lr, uregs []Value, r int32) *Value {
	if g.l.kcf.uniform[r] {
		return &uregs[r]
	}
	return &lr[r]
}
