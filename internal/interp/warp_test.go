package interp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/clc"
	"repro/internal/ir"
)

// scalarO1 is DefaultCompileOpts minus warp execution: the per-item
// reference the warp engine must match byte for byte.
var scalarO1 = CompileOpts{Opt: true}

// runWarpKernel compiles src, launches kernel "k" once under opts with
// one int32 output buffer of n elements and one int32 input buffer of n
// elements (seeded deterministically), and returns the output bytes.
func runWarpKernel(t *testing.T, src string, opts CompileOpts, nd NDRange, n int) []byte {
	t.Helper()
	mod, err := clc.Compile(src, "k")
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	m := NewMachine(mod)
	m.UseProgram(CompileModuleOpts(mod, opts))
	in := m.NewRegion(int64(n)*4, ir.Global)
	out := m.NewRegion(int64(n)*4, ir.Global)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(in.Bytes[i*4:], uint32(i*2654435761+12345))
	}
	args := []Value{
		{K: ir.Pointer, P: Ptr{R: out}},
		{K: ir.Pointer, P: Ptr{R: in}},
		IntV(int64(n)),
	}
	if err := m.Launch("k", args, nd); err != nil {
		t.Fatalf("launch: %v\n%s", err, src)
	}
	return out.Bytes
}

// TestWarpScalarParityFuzz randomizes branch conditions on the local id
// (the divergence source the uniformity analysis must classify) inside
// a loop with loads, stores and a barrier, and requires the warp engine
// — at several widths, including widths that leave partial warps — to
// reproduce the scalar engine's output bytes exactly.
func TestWarpScalarParityFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5EED))
	for trial := 0; trial < 12; trial++ {
		src := fmt.Sprintf(`
kernel void k(global int* out, global const int* in, int n)
{
    int lid = (int)get_local_id(0);
    int gid = (int)get_global_id(0);
    int acc = %d;
    int i;
    for (i = 0; i < %d; ++i) {
        if (((lid >> %d) ^ (i * %d)) & %d) acc += in[(gid + i) %% n] * %d;
        else acc -= (i + lid) & %d;
        if ((i & 3) == %d) acc ^= lid << 1;
    }
    barrier(1);
    if ((lid & %d) == 0) acc += gid * %d;
    out[gid] = acc;
}
`,
			rng.Intn(100), 8+rng.Intn(24), rng.Intn(3), 1+rng.Intn(7), rng.Intn(4),
			1+rng.Intn(5), rng.Intn(8), rng.Intn(4), rng.Intn(4), 1+rng.Intn(3))
		nd := ND1(128, 64)
		want := runWarpKernel(t, src, scalarO1, nd, 128)
		for _, width := range []int{64, 24, 7} {
			got := runWarpKernel(t, src, CompileOpts{Opt: true, WarpWidth: width}, nd, 128)
			if !bytes.Equal(want, got) {
				t.Fatalf("trial %d: warp width %d diverges from scalar output\n%s", trial, width, src)
			}
		}
	}
}

// TestWarpStatsReform drives a kernel whose control flow is uniform,
// then divergent (spill), then uniform again after a barrier (re-form),
// and checks the warp statistics end to end: warps formed with full
// occupancy, at least one divergence fallback, at least one barrier
// re-formation — through both the profiler snapshot and a custom
// Machine.WarpStats sink.
func TestWarpStatsReform(t *testing.T) {
	const src = `
kernel void k(global int* out, global const int* in, int n)
{
    int lid = (int)get_local_id(0);
    int acc = 0;
    int i;
    for (i = 0; i < 16; ++i) acc += i & 7;
    if (lid > 5) acc += in[lid];
    barrier(1);
    for (i = 0; i < 16; ++i) acc += i & 3;
    out[lid] = acc;
}
`
	mod, err := clc.Compile(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(mod)
	m.UseProgram(CompileModuleOpts(mod, DefaultCompileOpts))
	m.Profiler = NewProfiler(ProfileOptions{SampleEvery: 1})
	var sunk []WarpLaunchStats
	m.WarpStats = warpSinkFunc(func(st WarpLaunchStats) { sunk = append(sunk, st) })

	const n = 128
	in := m.NewRegion(n*4, ir.Global)
	out := m.NewRegion(n*4, ir.Global)
	args := []Value{
		{K: ir.Pointer, P: Ptr{R: out}},
		{K: ir.Pointer, P: Ptr{R: in}},
		IntV(n),
	}
	if err := m.Launch("k", args, ND1(n, 64)); err != nil {
		t.Fatal(err)
	}

	snaps := m.Profiler.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d kernel snapshots, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Warps != 2 {
		t.Errorf("Warps = %d, want 2 (two 64-item groups, one warp each)", s.Warps)
	}
	if s.WarpLanes != 128 {
		t.Errorf("WarpLanes = %d, want 128 (full occupancy)", s.WarpLanes)
	}
	if s.WarpSpills < 2 {
		t.Errorf("WarpSpills = %d, want >= 2 (the local-id branch spills every warp)", s.WarpSpills)
	}
	if s.WarpReforms < 2 {
		t.Errorf("WarpReforms = %d, want >= 2 (every warp re-forms at the barrier)", s.WarpReforms)
	}

	if len(sunk) != 1 {
		t.Fatalf("sink observed %d launches, want 1", len(sunk))
	}
	st := sunk[0]
	if st.Kernel != "k" || st.Width != DefaultWarpWidth {
		t.Errorf("sink stats = %+v, want kernel k at width %d", st, DefaultWarpWidth)
	}
	if st.Warps != s.Warps || st.Spills != s.WarpSpills || st.Reforms != s.WarpReforms {
		t.Errorf("sink stats %+v disagree with profiler snapshot %+v", st, s)
	}

	var buf bytes.Buffer
	m.Profiler.Dump(&buf)
	if !strings.Contains(buf.String(), "warps: 2") || !strings.Contains(buf.String(), "divergence fallbacks") {
		t.Errorf("Dump lacks warp stats:\n%s", buf.String())
	}
}

type warpSinkFunc func(WarpLaunchStats)

func (f warpSinkFunc) ObserveWarpLaunch(st WarpLaunchStats) { f(st) }

// TestWarpPartialOccupancy: a group smaller than the warp width forms
// one partial warp and still computes correct results.
func TestWarpPartialOccupancy(t *testing.T) {
	const src = `
kernel void k(global int* out, global const int* in, int n)
{
    int lid = (int)get_local_id(0);
    int acc = 0;
    int i;
    for (i = 0; i < 32; ++i) acc += i & 7;
    out[get_global_id(0)] = acc + in[lid] + lid;
}
`
	mod, err := clc.Compile(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(mod)
	m.UseProgram(CompileModuleOpts(mod, DefaultCompileOpts))
	m.Profiler = NewProfiler(ProfileOptions{SampleEvery: 1})
	const n = 20 // two groups of 10: partial warps at width 64
	in := m.NewRegion(n*4, ir.Global)
	out := m.NewRegion(n*4, ir.Global)
	args := []Value{
		{K: ir.Pointer, P: Ptr{R: out}},
		{K: ir.Pointer, P: Ptr{R: in}},
		IntV(n),
	}
	if err := m.Launch("k", args, ND1(n, 10)); err != nil {
		t.Fatal(err)
	}
	s := m.Profiler.Snapshot()[0]
	if s.Warps != 2 || s.WarpLanes != 20 {
		t.Errorf("Warps/WarpLanes = %d/%d, want 2/20 (two partial warps)", s.Warps, s.WarpLanes)
	}
	for i := 0; i < n; i++ {
		lid := i % 10
		got := int32(binary.LittleEndian.Uint32(out.Bytes[i*4:]))
		// sum over 32 iterations of (i & 7) = 4 * (0+1+...+7) = 112.
		if exp := int32(112 + lid); got != exp {
			t.Fatalf("out[%d] = %d, want %d", i, got, exp)
		}
	}
}

// TestWarpFaultAttribution: a fault on one specific lane must be
// attributed to the same work-item global id under the warp engine as
// under the scalar engine, with the same error text.
func TestWarpFaultAttribution(t *testing.T) {
	const src = `
kernel void k(global int* out, global const int* in, int n)
{
    int lid = (int)get_local_id(0);
    out[lid] = n / (lid - 5);
}
`
	fault := func(opts CompileOpts) string {
		mod, err := clc.Compile(src, "k")
		if err != nil {
			t.Fatal(err)
		}
		m := NewMachine(mod)
		m.UseProgram(CompileModuleOpts(mod, opts))
		in := m.NewRegion(64*4, ir.Global)
		out := m.NewRegion(64*4, ir.Global)
		args := []Value{
			{K: ir.Pointer, P: Ptr{R: out}},
			{K: ir.Pointer, P: Ptr{R: in}},
			IntV(64),
		}
		err = m.Launch("k", args, ND1(64, 64))
		if err == nil {
			t.Fatal("launch did not fault")
		}
		return err.Error()
	}
	scalar := fault(scalarO1)
	warp := fault(DefaultCompileOpts)
	if scalar != warp {
		t.Errorf("fault attribution differs:\n  scalar: %s\n  warp:   %s", scalar, warp)
	}
	if !strings.Contains(warp, "(5,0,0)") {
		t.Errorf("fault not attributed to lane 5: %s", warp)
	}
}

// TestWarpWidthKnob: WarpWidth is per-program — width 0 disables warp
// execution entirely (no warps reported), and Prog exposes the width.
func TestWarpWidthKnob(t *testing.T) {
	const src = `
kernel void k(global int* out, global const int* in, int n)
{
    out[get_local_id(0)] = n;
}
`
	mod, err := clc.Compile(src, "k")
	if err != nil {
		t.Fatal(err)
	}
	if w := CompileModuleOpts(mod, scalarO1).WarpWidth(); w != 0 {
		t.Errorf("scalar program WarpWidth = %d, want 0", w)
	}
	if w := CompileModuleOpts(mod, DefaultCompileOpts).WarpWidth(); w != DefaultWarpWidth {
		t.Errorf("default program WarpWidth = %d, want %d", w, DefaultWarpWidth)
	}

	m := NewMachine(mod)
	m.UseProgram(CompileModuleOpts(mod, scalarO1))
	m.Profiler = NewProfiler(ProfileOptions{SampleEvery: 1})
	in := m.NewRegion(64*4, ir.Global)
	out := m.NewRegion(64*4, ir.Global)
	args := []Value{
		{K: ir.Pointer, P: Ptr{R: out}},
		{K: ir.Pointer, P: Ptr{R: in}},
		IntV(64),
	}
	if err := m.Launch("k", args, ND1(64, 64)); err != nil {
		t.Fatal(err)
	}
	if s := m.Profiler.Snapshot()[0]; s.Warps != 0 {
		t.Errorf("scalar program formed %d warps, want 0", s.Warps)
	}
}
