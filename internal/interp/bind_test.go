package interp

import (
	"sync"
	"testing"

	"repro/internal/ir"
)

// TestBindRegionZeroCopy checks that a bound region reads and writes
// the caller's slice in place — the contract the opencl layer relies on
// to map device buffers into machines without per-launch copies.
func TestBindRegionZeroCopy(t *testing.T) {
	m := NewMachine(&ir.Module{})
	host := make([]byte, 16)
	r := m.BindRegion(host, ir.Global)
	if &r.Bytes[0] != &host[0] {
		t.Fatal("BindRegion copied the backing slice")
	}

	m.store(ir.I64T, LongV(0x1122334455667788), Ptr{R: r})
	if host[0] != 0x88 || host[7] != 0x11 {
		t.Errorf("store not visible in caller slice: % x", host[:8])
	}
	host[8] = 42
	if v := m.load(ir.I64T, Ptr{R: r, Off: 8}); v.I != 42 {
		t.Errorf("caller write not visible to load: got %d", v.I)
	}
}

// TestMachineReset checks a pooled machine drops its regions (so bound
// buffers are not kept alive) while keeping the reserved zero ID.
func TestMachineReset(t *testing.T) {
	m := NewMachine(&ir.Module{})
	r1 := m.NewRegion(8, ir.Global)
	if r1.ID != 1 {
		t.Fatalf("first region ID = %d, want 1", r1.ID)
	}
	m.Reset()
	if got := m.regionByID(r1.ID); got != nil {
		t.Error("region survived Reset")
	}
	r2 := m.NewRegion(8, ir.Global)
	if r2.ID != 1 {
		t.Errorf("post-reset region ID = %d, want 1", r2.ID)
	}
	if m.regionByID(0) != nil {
		t.Error("reserved region 0 must stay nil")
	}
}

// TestCrossMachineAtomics: with zero-copy binding, two machines can
// target the same bytes; atomics must serialize across machines, not
// per machine (run under -race).
func TestCrossMachineAtomics(t *testing.T) {
	src := &ir.Module{}
	m1, m2 := NewMachine(src), NewMachine(src)
	shared := make([]byte, 8)
	r1 := m1.BindRegion(shared, ir.Global)
	r2 := m2.BindRegion(shared, ir.Global)

	// Both machines must resolve the same backing array to the same
	// stripe lock, or cross-machine atomicity silently breaks.
	if atomicLock(Ptr{R: r1}) != atomicLock(Ptr{R: r2}) {
		t.Fatal("regions over the same bytes map to different atomic stripes")
	}
	// Emulate what OpAtomic does, from both machines concurrently.
	add := func(m *Machine, r *Region, n int) {
		for i := 0; i < n; i++ {
			mu := atomicLock(Ptr{R: r})
			mu.Lock()
			old := m.load(ir.I64T, Ptr{R: r})
			m.store(ir.I64T, LongV(old.I+1), Ptr{R: r})
			mu.Unlock()
		}
	}
	const n = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); add(m1, r1, n) }()
	go func() { defer wg.Done(); add(m2, r2, n) }()
	wg.Wait()
	if v := m1.load(ir.I64T, Ptr{R: r1}); v.I != 2*n {
		t.Errorf("cross-machine atomic count = %d, want %d", v.I, 2*n)
	}
}
