package experiments

import (
	"testing"

	"repro/internal/device"
	"repro/internal/metrics"
)

// testSizes keeps unit-test runtime small while covering all request
// sizes.
var testSizes = Sizes{Pairs: 24, Fours: 16, Eights: 12}

func TestPopulationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("population simulation in -short mode")
	}
	for _, dev := range device.Platforms() {
		dev := dev
		t.Run(dev.Vendor, func(t *testing.T) {
			e := NewEngine(dev)
			pops := e.RunPopulations(testSizes, 4)
			var prevBaseU float64
			for _, p := range pops {
				baseU := p.AvgUnfairness(Baseline)
				accU := p.AvgUnfairness(AccelOS)
				ekU := p.AvgUnfairness(EK)
				accFI := p.AvgFairnessImprovement(AccelOS)
				ekFI := p.AvgFairnessImprovement(EK)
				accSp := p.AvgSpeedup(AccelOS)
				ekSp := p.AvgSpeedup(EK)
				baseO := p.AvgOverlap(Baseline)
				accO := p.AvgOverlap(AccelOS)

				t.Logf("K=%d: U base=%.2f ek=%.2f acc=%.2f | FI ek=%.2fx acc=%.2fx | speedup ek=%.2f acc=%.2f | overlap base=%.2f acc=%.2f | ANTT acc=%.2f",
					p.K, baseU, ekU, accU, ekFI, accFI, ekSp, accSp, baseO, accO, p.AvgANTT(AccelOS))

				// Core paper claims, as shapes.
				if accU >= baseU {
					t.Errorf("K=%d: accelOS unfairness %.2f not below baseline %.2f", p.K, accU, baseU)
				}
				if accFI < 2 {
					t.Errorf("K=%d: accelOS fairness improvement %.2fx too small", p.K, accFI)
				}
				if accFI <= ekFI {
					t.Errorf("K=%d: accelOS improvement %.2fx should beat EK %.2fx", p.K, accFI, ekFI)
				}
				minSp := 1.0
				if p.K == 8 && dev.Vendor == "NVIDIA" {
					// 8-way sharing on the small 13-SMX device starves
					// the large compute-bound kernels in some samples;
					// the full population average stays near the paper's
					// 1.23x but small samples dip.
					minSp = 0.88
				}
				if accSp < minSp {
					t.Errorf("K=%d: accelOS average speedup %.2f below %.2f", p.K, accSp, minSp)
				}
				if accSp <= ekSp-0.02 {
					t.Errorf("K=%d: accelOS speedup %.2f should match or beat EK %.2f", p.K, accSp, ekSp)
				}
				if accO <= baseO {
					t.Errorf("K=%d: accelOS overlap %.2f not above baseline %.2f", p.K, accO, baseO)
				}
				// Baseline unfairness grows with K.
				if baseU < prevBaseU*0.8 {
					t.Errorf("K=%d: baseline unfairness %.2f should grow with K (prev %.2f)", p.K, baseU, prevBaseU)
				}
				prevBaseU = baseU
			}
		})
	}
}

func TestFig2MotivatingExample(t *testing.T) {
	e := NewEngine(device.NVIDIAK20m())
	r := e.RunWorkload(Fig2Workload())
	if len(r.Kernels) != 4 {
		t.Fatalf("Fig2 workload has %d kernels, want 4", len(r.Kernels))
	}
	// accelOS slows the four kernels much more evenly than the baseline.
	bu, au := r.Unfairness[Baseline], r.Unfairness[AccelOS]
	if au >= bu/2 {
		t.Errorf("Fig2: accelOS U %.2f vs baseline %.2f — expected at least 2x fairer", au, bu)
	}
	if sp := r.Speedup[AccelOS]; sp < 1.0 {
		t.Errorf("Fig2: accelOS throughput speedup %.2f < 1", sp)
	}
	t.Logf("Fig2: baseU=%.2f ekU=%.2f accU=%.2f, speedup acc=%.2f ek=%.2f",
		bu, r.Unfairness[EK], au, r.Speedup[AccelOS], r.Speedup[EK])
}

func TestFig11AlphabeticalPairs(t *testing.T) {
	pairs := Fig11Pairs()
	if len(pairs) != 12 {
		t.Fatalf("got %d alphabetical pairs, want 12 (25 kernels -> 12 disjoint neighbours)", len(pairs))
	}
	e := NewEngine(device.NVIDIAK20m())
	e.WithOverlap = false
	wins := 0
	var accU, ekU, baseU float64
	for _, p := range pairs {
		r := e.RunWorkload(p)
		baseU += r.Unfairness[Baseline]
		ekU += r.Unfairness[EK]
		accU += r.Unfairness[AccelOS]
		// "Best" with a small tolerance: the paper notes pairs where EK
		// and accelOS are nearly equal.
		if r.Unfairness[AccelOS] <= r.Unfairness[Baseline]+0.05 && r.Unfairness[AccelOS] <= r.Unfairness[EK]+0.05 {
			wins++
		}
	}
	t.Logf("Fig11 means over 12 pairs: base=%.2f ek=%.2f acc=%.2f, accelOS best on %d/12",
		baseU/12, ekU/12, accU/12, wins)
	if wins < 7 {
		t.Errorf("accelOS delivered best unfairness on only %d/12 pairs", wins)
	}
	if accU >= ekU {
		t.Errorf("accelOS mean unfairness %.2f should beat EK %.2f across the alphabetical pairs", accU/12, ekU/12)
	}
	if accU >= baseU {
		t.Errorf("accelOS mean unfairness %.2f should beat baseline %.2f", accU/12, baseU/12)
	}
}

func TestFig15SingleKernelImpact(t *testing.T) {
	e := NewEngine(device.NVIDIAK20m())
	rows := e.Fig15()
	if len(rows) != 25 {
		t.Fatalf("Fig15 rows = %d, want 25", len(rows))
	}
	var naive, opt []float64
	for _, r := range rows {
		naive = append(naive, r.Naive)
		opt = append(opt, r.Optimized)
		if r.Naive < 0.80 || r.Naive > 1.35 {
			t.Errorf("%s: naive speedup %.3f implausible", r.Kernel, r.Naive)
		}
		if r.Optimized < 0.90 || r.Optimized > 1.40 {
			t.Errorf("%s: optimized speedup %.3f implausible", r.Kernel, r.Optimized)
		}
	}
	gn, go_ := metrics.GeoMean(naive), metrics.GeoMean(opt)
	t.Logf("Fig15 geomeans: naive=%.3f optimized=%.3f", gn, go_)
	if go_ < gn {
		t.Errorf("optimized geomean %.3f below naive %.3f", go_, gn)
	}
	if go_ < 1.0 {
		t.Errorf("optimized accelOS should not slow isolated kernels on average (geomean %.3f)", go_)
	}
}
