package experiments

import "testing"

func TestRunClusterExperimentAllPolicies(t *testing.T) {
	for _, pol := range []string{"round-robin", "least-loaded", "best-fit", "tenant-affinity"} {
		rep, err := RunClusterExperiment(ClusterConfig{
			Devices: 3, Policy: pol, Tenants: 3, PerTenant: 3, Seed: 7, Rebalance: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if rep.Result.Makespan <= 0 {
			t.Errorf("%s: zero makespan", pol)
		}
		// A 3-device pool must beat running the same workload serially
		// on one device.
		if rep.Speedup <= 1 {
			t.Errorf("%s: cluster speedup %.2f over single-device serial, want > 1", pol, rep.Speedup)
		}
		for i, tm := range rep.Result.Timings {
			if tm.End <= 0 {
				t.Errorf("%s: request %d never completed", pol, i)
			}
		}
	}
}

func TestRunClusterExperimentValidation(t *testing.T) {
	if _, err := RunClusterExperiment(ClusterConfig{Devices: 0, Policy: "round-robin"}); err == nil {
		t.Error("zero devices should fail")
	}
	if _, err := RunClusterExperiment(ClusterConfig{Devices: 2, Policy: "nope"}); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestShareSpread(t *testing.T) {
	if s := ShareSpread(map[string]float64{"a": 0.5, "b": 0.5}); s != 0 {
		t.Errorf("equal shares spread %f, want 0", s)
	}
	if s := ShareSpread(map[string]float64{"a": 0.75, "b": 0.25}); s != 1 {
		t.Errorf("0.75/0.25 spread %f, want 1", s)
	}
	if s := ShareSpread(map[string]float64{"a": 1}); s != 0 {
		t.Errorf("single-tenant spread %f, want 0", s)
	}
}
