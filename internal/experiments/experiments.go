// Package experiments regenerates every table and figure of the paper's
// evaluation (§8) on the simulated platforms: unfairness and fairness
// improvement (Figs. 9-11), kernel execution overlap (Fig. 12),
// throughput speedups (Figs. 13-14), the motivating 4-kernel example
// (Fig. 2), STP/ANTT tables (Tables 1-2), and the single-kernel overhead
// study (Fig. 15).
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/accelos"
	"repro/internal/device"
	"repro/internal/elastic"
	"repro/internal/metrics"
	"repro/internal/parboil"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Scheme identifies an execution regime.
type Scheme int

// Schemes compared throughout the evaluation.
const (
	Baseline     Scheme = iota // standard OpenCL
	EK                         // Elastic Kernels
	AccelOS                    // accelOS (optimized, adaptive chunks)
	AccelOSNaive               // accelOS without adaptive scheduling
)

func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "OpenCL"
	case EK:
		return "EK"
	case AccelOS:
		return "accelOS"
	case AccelOSNaive:
		return "accelOS-naive"
	}
	return "?"
}

// BaseIters is the iteration count of the longest application in every
// workload (shorter members iterate proportionally more).
const BaseIters = 2

// Engine caches isolated-execution baselines per kernel and runs
// workloads under every scheme.
type Engine struct {
	Dev *device.Platform
	// WithOverlap additionally runs the steady-state co-execution mode
	// per workload to measure the Fig. 12 overlap metric.
	WithOverlap bool

	mu  sync.Mutex
	iso map[string]int64 // kernel full name + iters -> isolated duration
}

// NewEngine returns an experiment engine for the platform.
func NewEngine(dev *device.Platform) *Engine {
	return &Engine{Dev: dev, WithOverlap: true, iso: make(map[string]int64)}
}

// isolated returns the duration of the application running alone on the
// baseline stack (the T(a) of the slowdown metric), cached per kernel
// and iteration count.
func (e *Engine) isolated(k *sim.KernelExec) int64 {
	key := fmt.Sprintf("%s/%d", k.Name, k.NumIters())
	e.mu.Lock()
	if v, ok := e.iso[key]; ok {
		e.mu.Unlock()
		return v
	}
	e.mu.Unlock()
	kc := *k
	kc.ID = 0
	r := sim.RunBaseline(e.Dev, []*sim.KernelExec{&kc})
	d := r.Timings[0].Duration()
	e.mu.Lock()
	e.iso[key] = d
	e.mu.Unlock()
	return d
}

// WorkloadResult holds every metric of one workload under all schemes.
type WorkloadResult struct {
	Kernels []string
	// Slowdowns[scheme][i] is IS_i.
	Slowdowns map[Scheme][]float64
	// Unfairness[scheme] is U.
	Unfairness map[Scheme]float64
	// Speedup[scheme] is throughput relative to baseline.
	Speedup map[Scheme]float64
	// Overlap[scheme] is the co-execution fraction O.
	Overlap map[Scheme]float64
	// STP / ANTT / worst ANTT per scheme.
	STP   map[Scheme]float64
	ANTT  map[Scheme]float64
	WANTT map[Scheme]float64
}

// FairnessImprovement returns U_baseline / U_scheme for the workload.
func (w *WorkloadResult) FairnessImprovement(s Scheme) float64 {
	return metrics.FairnessImprovement(w.Unfairness[Baseline], w.Unfairness[s])
}

// RunWorkload simulates one workload (kernel indices into the Parboil
// set) under baseline, EK and accelOS.
//
// Fairness and throughput metrics use the paper's request model: K
// kernel execution requests arriving concurrently, one execution each
// (§7.2). The overlap metric uses the steady-state co-execution mode
// (every application looping with equalized durations), matching the
// paper's measurement of co-residency on the device.
func (e *Engine) RunWorkload(idxs []int) *WorkloadResult {
	execs := workload.BuildSingle(e.Dev, idxs)
	res := &WorkloadResult{
		Slowdowns:  make(map[Scheme][]float64),
		Unfairness: make(map[Scheme]float64),
		Speedup:    make(map[Scheme]float64),
		Overlap:    make(map[Scheme]float64),
		STP:        make(map[Scheme]float64),
		ANTT:       make(map[Scheme]float64),
		WANTT:      make(map[Scheme]float64),
	}
	for _, k := range execs {
		res.Kernels = append(res.Kernels, k.Name)
	}

	runs := map[Scheme]*sim.Result{
		Baseline: sim.RunBaseline(e.Dev, workload.Clone(execs)),
		EK:       sim.RunElastic(e.Dev, workload.Clone(execs), elastic.Plan),
		AccelOS:  sim.RunAccelOS(e.Dev, workload.Clone(execs), false, accelos.PlanShares),
	}
	for scheme, r := range runs {
		iss := make([]float64, len(execs))
		for i, k := range execs {
			iss[i] = metrics.IndividualSlowdown(r.ByID(k.ID).Duration(), e.isolated(k))
		}
		res.Slowdowns[scheme] = iss
		res.Unfairness[scheme] = metrics.Unfairness(iss)
		res.Speedup[scheme] = metrics.ThroughputSpeedup(runs[Baseline].Makespan, r.Makespan)
		res.STP[scheme] = metrics.STP(iss)
		res.ANTT[scheme] = metrics.ANTT(iss)
		res.WANTT[scheme] = metrics.WorstANTT(iss)
	}
	if e.WithOverlap {
		loop := workload.Build(e.Dev, idxs, BaseIters)
		res.Overlap[Baseline] = sim.RunBaseline(e.Dev, workload.Clone(loop)).Overlap()
		res.Overlap[EK] = sim.RunElastic(e.Dev, workload.Clone(loop), elastic.Plan).Overlap()
		res.Overlap[AccelOS] = sim.RunAccelOS(e.Dev, workload.Clone(loop), false, accelos.PlanShares).Overlap()
	}
	return res
}

// Population is a set of workload results of one request size.
type Population struct {
	K       int
	Results []*WorkloadResult
}

// Sizes configures population sizes; Full matches the paper
// (625 / 16384 / 32768).
type Sizes struct {
	Pairs  int // 0 or >=625 means all 625
	Fours  int
	Eights int
}

// PaperSizes are the populations evaluated in the paper.
var PaperSizes = Sizes{Pairs: 625, Fours: 16384, Eights: 32768}

// QuickSizes keep test and benchmark runtimes reasonable while
// preserving the population structure.
var QuickSizes = Sizes{Pairs: 60, Fours: 48, Eights: 32}

// RunPopulations runs the 2-, 4- and 8-request populations.
func (e *Engine) RunPopulations(sz Sizes, parallelism int) []*Population {
	var pops []*Population

	pairs := workload.Pairs()
	if sz.Pairs > 0 && sz.Pairs < len(pairs) {
		// Random sample of the 625 pair grid (a stride sample would walk
		// the diagonal and keep pairing kernels with themselves).
		pairs = workload.Random(0xCAFE, 2, sz.Pairs)
	}
	pops = append(pops, e.runSet(2, pairs, parallelism))
	pops = append(pops, e.runSet(4, workload.Random(0xA11CE, 4, sz.Fours), parallelism))
	pops = append(pops, e.runSet(8, workload.Random(0xB0B, 8, sz.Eights), parallelism))
	return pops
}

func (e *Engine) runSet(k int, combos [][]int, parallelism int) *Population {
	pop := &Population{K: k, Results: make([]*WorkloadResult, len(combos))}
	if parallelism < 1 {
		parallelism = 1
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, c := range combos {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c []int) {
			defer wg.Done()
			pop.Results[i] = e.RunWorkload(c)
			<-sem
		}(i, c)
	}
	wg.Wait()
	return pop
}

// AvgUnfairness averages U over the population for one scheme (Fig. 9).
func (p *Population) AvgUnfairness(s Scheme) float64 {
	var xs []float64
	for _, r := range p.Results {
		xs = append(xs, r.Unfairness[s])
	}
	return metrics.Mean(xs)
}

// AvgFairnessImprovement averages U_base/U_s (Figs. 9-10 summary).
func (p *Population) AvgFairnessImprovement(s Scheme) float64 {
	var xs []float64
	for _, r := range p.Results {
		xs = append(xs, r.FairnessImprovement(s))
	}
	return metrics.Mean(xs)
}

// FairnessImprovements returns the per-workload improvement distribution
// (Fig. 10).
func (p *Population) FairnessImprovements(s Scheme) []float64 {
	var xs []float64
	for _, r := range p.Results {
		xs = append(xs, r.FairnessImprovement(s))
	}
	return xs
}

// AvgOverlap averages the co-execution fraction (Fig. 12).
func (p *Population) AvgOverlap(s Scheme) float64 {
	var xs []float64
	for _, r := range p.Results {
		xs = append(xs, r.Overlap[s])
	}
	return metrics.Mean(xs)
}

// AvgSpeedup averages throughput speedup over baseline (Fig. 13).
func (p *Population) AvgSpeedup(s Scheme) float64 {
	var xs []float64
	for _, r := range p.Results {
		xs = append(xs, r.Speedup[s])
	}
	return metrics.Mean(xs)
}

// Speedups returns the per-workload speedup distribution (Fig. 14).
func (p *Population) Speedups(s Scheme) []float64 {
	var xs []float64
	for _, r := range p.Results {
		xs = append(xs, r.Speedup[s])
	}
	return xs
}

// AvgSTP / AvgANTT / AvgWANTT aggregate the Table 1/2 columns.
func (p *Population) AvgSTP(s Scheme) float64 {
	var xs []float64
	for _, r := range p.Results {
		xs = append(xs, r.STP[s])
	}
	return metrics.Mean(xs)
}

// AvgANTT averages the ANTT column.
func (p *Population) AvgANTT(s Scheme) float64 {
	var xs []float64
	for _, r := range p.Results {
		xs = append(xs, r.ANTT[s])
	}
	return metrics.Mean(xs)
}

// MaxWANTT is the worst ANTT observed in the population.
func (p *Population) MaxWANTT(s Scheme) float64 {
	var mx float64
	for _, r := range p.Results {
		if r.WANTT[s] > mx {
			mx = r.WANTT[s]
		}
	}
	return mx
}

// SingleKernelResult is one bar of Fig. 15.
type SingleKernelResult struct {
	Kernel    string
	Naive     float64 // speedup of naive accelOS over standard OpenCL
	Optimized float64 // speedup with adaptive scheduling
}

// Fig15 measures the transformation's single-kernel performance impact
// for every Parboil kernel: isolated execution under accelOS (naive and
// optimized) relative to the standard stack.
func (e *Engine) Fig15() []SingleKernelResult {
	var out []SingleKernelResult
	for _, pk := range parboil.Kernels() {
		k := pk.Exec(0)
		k.Iters = 3
		alone := e.isolated(k)
		naive := sim.RunAccelOS(e.Dev, workload.Clone([]*sim.KernelExec{k}), true, accelos.PlanShares)
		opt := sim.RunAccelOS(e.Dev, workload.Clone([]*sim.KernelExec{k}), false, accelos.PlanShares)
		out = append(out, SingleKernelResult{
			Kernel:    pk.FullName(),
			Naive:     float64(alone) / float64(naive.Timings[0].Duration()),
			Optimized: float64(alone) / float64(opt.Timings[0].Duration()),
		})
	}
	return out
}

// Fig2Workload is the motivating example's kernel set: bfs, cutcp,
// stencil and tpacf launched concurrently.
func Fig2Workload() []int {
	names := []string{"bfs/BFS_kernel", "cutcp/lattice6overlap", "stencil/naive_kernel", "tpacf/gen_hists"}
	var idxs []int
	for _, n := range names {
		for i, k := range parboil.Kernels() {
			if k.FullName() == n {
				idxs = append(idxs, i)
			}
		}
	}
	return idxs
}

// Fig11Pairs returns the paper's 13 alphabetical-neighbour pairs
// (bfs with cutcp, histo_final with histo_intermediates, ...).
func Fig11Pairs() [][]int {
	ks := parboil.Kernels()
	// Sort indices by full name.
	idx := make([]int, len(ks))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && ks[idx[j]].FullName() < ks[idx[j-1]].FullName(); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	var out [][]int
	for i := 0; i+1 < len(idx); i += 2 {
		out = append(out, []int{idx[i], idx[i+1]})
	}
	return out
}
