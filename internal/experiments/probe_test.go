package experiments

import (
	"testing"

	"repro/internal/device"
)

func TestProbeFig11(t *testing.T) {
	e := NewEngine(device.NVIDIAK20m())
	e.WithOverlap = false
	for _, p := range Fig11Pairs()[:4] {
		r := e.RunWorkload(p)
		t.Logf("%v: U base=%.2f ek=%.2f acc=%.2f IS base=%v acc=%v",
			r.Kernels, r.Unfairness[Baseline], r.Unfairness[EK], r.Unfairness[AccelOS],
			r.Slowdowns[Baseline], r.Slowdowns[AccelOS])
	}
}
