package experiments

// The chaos suite runs both harness phases under the race detector.
// Phase B (the service boundary) needs the daemon in a real child
// process: transport injection is installed process-wide on the client
// side, and an in-process daemon would both eat injected faults meant
// for clients and make -race report false races on the shared mmap
// pages (synchronization crosses the socket, which -race cannot see).
// TestMain therefore re-executes this test binary in daemon mode, the
// same shape the service suite and accelsim's -exp chaos use.

import (
	"io"
	"os"
	"runtime"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	if sock := os.Getenv(ChaosDaemonEnv); sock != "" {
		ServeChaosDaemon(sock)
		return
	}
	os.Exit(m.Run())
}

// TestChaosRuntime is phase A: seeded device failures and slice delays
// under the 25-kernel multi-tenant workload. RunChaosRuntime itself
// asserts byte-identical-or-typed-error and a full drain; the test
// additionally pins that the harness exercised something and that no
// goroutines leak.
func TestChaosRuntime(t *testing.T) {
	before := runtime.NumGoroutine()
	rep, err := RunChaosRuntime(42, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chains != 25 {
		t.Errorf("chains = %d, want 25", rep.Chains)
	}
	if rep.OK+rep.TypedFailed != rep.Chains {
		t.Errorf("ok(%d) + typed(%d) != chains(%d)", rep.OK, rep.TypedFailed, rep.Chains)
	}
	if rep.OK == 0 {
		t.Error("no chain succeeded — the harness is not proving recovery, only failure")
	}
	if rep.FaultsFired["device-fail"] == 0 && rep.FaultsFired["slice-delay"] == 0 {
		t.Errorf("no faults fired: %v — the chaos run was a plain run", rep.FaultsFired)
	}
	// Everything the harness started must be gone again.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosWatchdog is the deterministic runaway-kernel scenario.
func TestChaosWatchdog(t *testing.T) {
	if err := RunChaosWatchdog(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestChaosService is phase B: client-side frame drops, torn
// connections and shm map failures against a clean child-process
// daemon. Every chain must converge via retry/replay, and the daemon
// must drain to mem=0 active=0 afterwards (asserted by stop).
func TestChaosService(t *testing.T) {
	sock, stop, err := SpawnChaosDaemon(os.Args[0], "-test.run=^$")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunChaosService(sock, 7, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chains != 25 || rep.OK != 25 {
		t.Errorf("chains=%d ok=%d, want 25/25", rep.Chains, rep.OK)
	}
	var fired int64
	for _, n := range rep.FaultsFired {
		fired += n
	}
	if fired == 0 {
		t.Errorf("no transport faults fired: %v", rep.FaultsFired)
	}
	if err := stop(); err != nil {
		t.Error(err)
	}
}
