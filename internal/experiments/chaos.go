// Chaos harness: seeded fault injection against the live runtime and
// the out-of-process service boundary. The acceptance contract is
// byte-identical-or-typed-error — under injected device failures, slice
// delays, dropped frames, torn connections and failed shm maps, every
// kernel chain either produces output byte-identical to the fault-free
// native reference or fails with one of the runtime's typed sentinels.
// Silent corruption or an untyped error fails the run.

package experiments

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/accelos"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/opencl"
	"repro/internal/parboil"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// chaosTenants is the fan-out of both chaos phases: the 25 Parboil
// kernels are split across this many concurrent tenants.
const chaosTenants = 4

// chaosNatives computes the fault-free reference outputs every chaos
// run compares against.
func chaosNatives(kernels []*parboil.Kernel) ([][][]byte, error) {
	out := make([][][]byte, len(kernels))
	for i, k := range kernels {
		ref, err := k.RunNative()
		if err != nil {
			return nil, fmt.Errorf("%s: native reference: %w", k.FullName(), err)
		}
		out[i] = ref
	}
	return out, nil
}

// typedRuntimeFault reports whether an in-process chain failure is one
// of the sentinels the fault model is allowed to surface.
func typedRuntimeFault(err error) bool {
	return errors.Is(err, accelos.ErrDeviceLost) ||
		errors.Is(err, accelos.ErrKernelTimeout) ||
		errors.Is(err, accelos.ErrKernelQuarantined) ||
		errors.Is(err, accelos.ErrAdmissionRejected) ||
		errors.Is(err, opencl.ErrBufferReleased)
}

// runParboilViaApp replays one kernel's verification launch through the
// in-process App API — uploads behind events, kernel behind the
// uploads, read-backs behind the kernel — and compares every buffer
// against the native reference.
func runParboilViaApp(app *accelos.App, k *parboil.Kernel, native [][]byte) error {
	prog, err := app.CreateProgram(k.Source)
	if err != nil {
		return fmt.Errorf("%s: program: %w", k.FullName(), err)
	}
	kh, err := prog.CreateKernel(k.Name)
	if err != nil {
		return fmt.Errorf("%s: kernel: %w", k.FullName(), err)
	}
	spec := k.Setup()
	bufs := make([]*accelos.BufferHandle, len(spec.Args))
	defer func() {
		for _, b := range bufs {
			if b != nil {
				b.Release()
			}
		}
	}()
	var uploads []*opencl.Event
	for i, a := range spec.Args {
		if a.Scalar != nil {
			if err := kh.SetArgInt32(i, int32(*a.Scalar)); err != nil {
				return err
			}
			continue
		}
		host := parboil.EncodeArg(a)
		if host == nil {
			return fmt.Errorf("%s: argument %q has no value", k.FullName(), a.Name)
		}
		b, err := app.CreateBuffer(int64(len(host)))
		if err != nil {
			return fmt.Errorf("%s: buffer %q: %w", k.FullName(), a.Name, err)
		}
		bufs[i] = b
		ev, err := b.WriteAsync(0, host)
		if err != nil {
			return fmt.Errorf("%s: write %q: %w", k.FullName(), a.Name, err)
		}
		uploads = append(uploads, ev)
		if err := kh.SetArgBuffer(i, b); err != nil {
			return err
		}
	}
	nd := opencl.NDRange{Dims: spec.Dims, Global: spec.Global, Local: spec.Local}
	kev, err := app.EnqueueKernelAsync(kh, nd, uploads...)
	if err != nil {
		return fmt.Errorf("%s: enqueue: %w", k.FullName(), err)
	}
	outs := make([][]byte, len(spec.Args))
	var reads []*opencl.Event
	for i, b := range bufs {
		if b == nil {
			continue
		}
		outs[i] = make([]byte, len(native[i]))
		ev, err := b.ReadAsync(0, outs[i], kev)
		if err != nil {
			return fmt.Errorf("%s: read %q: %w", k.FullName(), spec.Args[i].Name, err)
		}
		reads = append(reads, ev)
	}
	for _, ev := range reads {
		if err := ev.Wait(); err != nil {
			return fmt.Errorf("%s: pipeline: %w", k.FullName(), err)
		}
	}
	for i := range spec.Args {
		if outs[i] == nil {
			continue
		}
		if !bytesEqual(native[i], outs[i]) {
			return fmt.Errorf("%s: buffer %d (%s) differs from the native reference",
				k.FullName(), i, spec.Args[i].Name)
		}
	}
	return nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// waitUntil polls cond to true within the deadline.
func waitUntil(what string, d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// ChaosReport summarizes one chaos phase for the caller's output.
type ChaosReport struct {
	Chains      int
	OK          int
	TypedFailed int
	Retries     int64
	FaultsFired map[fault.Point]int64
	Relaunches  int64
	DeviceFails int64
}

// RunChaosRuntime is chaos phase A: the 25-kernel Parboil workload
// split across concurrent tenants on a two-device cluster runtime,
// with seeded device failures and slice delays injected underneath and
// a repair goroutine healing devices behind them. Every chain must be
// byte-identical or fail typed; afterwards the runtime must drain to
// zero active executions and zero held memory.
func RunChaosRuntime(seed int64, w io.Writer) (*ChaosReport, error) {
	kernels := parboil.Kernels()
	natives, err := chaosNatives(kernels)
	if err != nil {
		return nil, err
	}

	rt := accelos.NewBoundedClusterRuntime(opencl.GetPlatforms(), cluster.LeastLoaded(), 2)
	defer rt.Shutdown()
	reg := telemetry.NewRegistry()
	rt.SetTelemetry(nil, reg, nil)
	rt.SetSliceRounds(2)
	// A generous deadline: the watchdog hooks run on every launch but
	// must never kill a legitimate chaos kernel. The deterministic
	// watchdog scenario (RunChaosWatchdog) covers the kill path.
	rt.SetFaultPolicy(accelos.FaultPolicy{
		MaxRelaunches:  4,
		LaunchDeadline: 60 * time.Second,
	})

	inj := fault.NewInjector(seed).
		EnableLimited(fault.DeviceFail, 0.2, 12).
		Enable(fault.SliceDelay, 0.25)
	inj.SetSliceDelay(200 * time.Microsecond)
	rt.Pool().SetFaultInjector(inj)
	opencl.SetFaultInjector(inj)
	defer opencl.SetFaultInjector(nil)
	defer rt.Pool().SetFaultInjector(nil)

	// The repair crew: failed devices come back on a short lease, so
	// parked and relaunched work always finds a home eventually.
	stopHeal := make(chan struct{})
	var healWG sync.WaitGroup
	healWG.Add(1)
	go func() {
		defer healWG.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopHeal:
				return
			case <-tick.C:
				for d := range rt.Pool().Devices() {
					rt.Pool().HealDevice(d)
				}
			}
		}
	}()

	rep := &ChaosReport{}
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for tnt := 0; tnt < chaosTenants; tnt++ {
		wg.Add(1)
		go func(tnt int) {
			defer wg.Done()
			app := rt.Connect(fmt.Sprintf("chaos-%d", tnt))
			defer app.Close()
			for i := tnt; i < len(kernels); i += chaosTenants {
				err := runParboilViaApp(app, kernels[i], natives[i])
				mu.Lock()
				rep.Chains++
				switch {
				case err == nil:
					rep.OK++
				case typedRuntimeFault(err):
					rep.TypedFailed++
				default:
					if firstErr == nil {
						firstErr = fmt.Errorf("tenant %d: untyped chaos failure: %w", tnt, err)
					}
				}
				mu.Unlock()
			}
		}(tnt)
	}
	wg.Wait()
	close(stopHeal)
	healWG.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Quiesce: injection off, everything healed, and the runtime must
	// drain completely — no leaked executions, no held memory, nothing
	// parked.
	opencl.SetFaultInjector(nil)
	rt.Pool().SetFaultInjector(nil)
	for d := range rt.Pool().Devices() {
		rt.Pool().HealDevice(d)
	}
	if err := waitUntil("active executions to drain", 30*time.Second,
		func() bool { return rt.ActiveExecutions() == 0 }); err != nil {
		return nil, err
	}
	if err := waitUntil("memory to drain", 30*time.Second,
		func() bool { return rt.Memory().Used() == 0 }); err != nil {
		return nil, fmt.Errorf("%w (still holding %d bytes)", err, rt.Memory().Used())
	}
	if n := rt.Pool().Parked(); n != 0 {
		return nil, fmt.Errorf("chaos: %d executions still parked after heal", n)
	}

	rep.FaultsFired = inj.Counts()
	rep.Relaunches = reg.CounterTotal("relaunches_total")
	rep.DeviceFails = reg.CounterTotal("device_failures_total")
	if w != nil {
		fmt.Fprintf(w, "chaos runtime: seed=%d chains=%d ok=%d typed-failed=%d device-failures=%d relaunches=%d faults=%v\n",
			seed, rep.Chains, rep.OK, rep.TypedFailed, rep.DeviceFails, rep.Relaunches, rep.FaultsFired)
	}
	return rep, nil
}

// chaosSpinSrc is a runaway kernel: far over any reasonable launch
// deadline, under the instruction budget.
const chaosSpinSrc = `
kernel void spin(global int* out, int n)
{
    int i = (int)get_global_id(0);
    int acc = 0;
    int t;
    for (t = 0; t < 300000; ++t) acc += (i + t) & 7;
    if (i < n) out[i] = acc;
}
`

// RunChaosWatchdog is the deterministic runaway-kernel scenario: a spin
// kernel against a short wall-clock deadline must die twice with
// ErrKernelTimeout and then be quarantined.
func RunChaosWatchdog(w io.Writer) error {
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	rt.SetFaultPolicy(accelos.FaultPolicy{
		LaunchDeadline:  100 * time.Millisecond,
		QuarantineAfter: 2,
	})
	app := rt.Connect("runaway")
	defer app.Close()

	prog, err := app.CreateProgram(chaosSpinSrc)
	if err != nil {
		return err
	}
	k, err := prog.CreateKernel("spin")
	if err != nil {
		return err
	}
	const n = 64
	buf, err := app.CreateBuffer(n * 4)
	if err != nil {
		return err
	}
	defer buf.Release()
	if err := k.SetArgBuffer(0, buf); err != nil {
		return err
	}
	if err := k.SetArgInt32(1, n); err != nil {
		return err
	}
	nd := opencl.NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{32, 1, 1}}
	for i := 0; i < 2; i++ {
		if err := app.EnqueueKernel(k, nd); !errors.Is(err, accelos.ErrKernelTimeout) {
			return fmt.Errorf("chaos watchdog: launch %d: err = %v, want ErrKernelTimeout", i, err)
		}
	}
	if err := app.EnqueueKernel(k, nd); !errors.Is(err, accelos.ErrKernelQuarantined) {
		return fmt.Errorf("chaos watchdog: post-quarantine launch: err = %v, want ErrKernelQuarantined", err)
	}
	if w != nil {
		fmt.Fprintf(w, "chaos watchdog: 2 kills -> quarantined (%d recorded)\n",
			rt.WatchdogKills("runaway", "spin"))
	}
	return nil
}

// retryableChaos classifies a service-phase chain failure: transient
// per the client's own classification, or caused by an injected fault
// (which the harness knows is transient by construction).
func retryableChaos(err error) bool {
	return service.Retryable(err) || errors.Is(err, fault.ErrInjected)
}

// runParboilViaClient is runParboilViaApp over the service boundary.
func runParboilViaClient(c *service.Client, k *parboil.Kernel, native [][]byte) error {
	prog, err := c.CreateProgram(k.Source)
	if err != nil {
		return fmt.Errorf("%s: program: %w", k.FullName(), err)
	}
	rk, err := prog.CreateKernel(k.Name)
	if err != nil {
		return fmt.Errorf("%s: kernel: %w", k.FullName(), err)
	}
	spec := k.Setup()
	bufs := make([]*service.RemoteBuffer, len(spec.Args))
	defer func() {
		for _, b := range bufs {
			if b != nil {
				b.Release()
			}
		}
	}()
	var uploads []*opencl.Event
	for i, a := range spec.Args {
		if a.Scalar != nil {
			if err := rk.SetArgInt32(i, int32(*a.Scalar)); err != nil {
				return err
			}
			continue
		}
		host := parboil.EncodeArg(a)
		if host == nil {
			return fmt.Errorf("%s: argument %q has no value", k.FullName(), a.Name)
		}
		b, err := c.CreateBuffer(int64(len(host)))
		if err != nil {
			return fmt.Errorf("%s: buffer %q: %w", k.FullName(), a.Name, err)
		}
		bufs[i] = b
		ev, err := b.WriteAsync(0, host)
		if err != nil {
			return fmt.Errorf("%s: write %q: %w", k.FullName(), a.Name, err)
		}
		uploads = append(uploads, ev)
		if err := rk.SetArgBuffer(i, b); err != nil {
			return err
		}
	}
	nd := opencl.NDRange{Dims: spec.Dims, Global: spec.Global, Local: spec.Local}
	kev, err := c.EnqueueKernelAsync(rk, nd, uploads...)
	if err != nil {
		return fmt.Errorf("%s: enqueue: %w", k.FullName(), err)
	}
	outs := make([][]byte, len(spec.Args))
	var reads []*opencl.Event
	for i, b := range bufs {
		if b == nil {
			continue
		}
		outs[i] = make([]byte, len(native[i]))
		ev, err := b.ReadAsync(0, outs[i], kev)
		if err != nil {
			return fmt.Errorf("%s: read %q: %w", k.FullName(), spec.Args[i].Name, err)
		}
		reads = append(reads, ev)
	}
	for _, ev := range reads {
		if err := ev.Wait(); err != nil {
			return fmt.Errorf("%s: pipeline: %w", k.FullName(), err)
		}
	}
	for i := range spec.Args {
		if outs[i] == nil {
			continue
		}
		if !bytesEqual(native[i], outs[i]) {
			return fmt.Errorf("%s: buffer %d (%s) differs from the native reference",
				k.FullName(), i, spec.Args[i].Name)
		}
	}
	return nil
}

// RunChaosService is chaos phase B: the same Parboil workload driven
// through service clients against a CLEAN daemon at sock (the daemon
// must run in another process — transport injection is installed in
// this process only, modeling a flaky link as seen from the client).
// Frame drops, torn connections and shm map failures are injected
// client-side; chains ride them out with DialWithOptions retry plus
// chain-level replay. Replay is safe at chain granularity because every
// chain rebuilds its state — programs, buffers, uploads — from
// host-resident inputs against a fresh connection; the runtime never
// re-enqueues a possibly-executed kernel (see service.Retryable).
func RunChaosService(sock string, seed int64, w io.Writer) (*ChaosReport, error) {
	kernels := parboil.Kernels()
	natives, err := chaosNatives(kernels)
	if err != nil {
		return nil, err
	}

	inj := fault.NewInjector(seed).
		Enable(fault.WireDropFrame, 0.005).
		Enable(fault.WireCloseConn, 0.003).
		Enable(fault.ShmMapFail, 0.05)
	wire.SetFaultInjector(inj)
	defer wire.SetFaultInjector(nil)

	reg := telemetry.NewRegistry()
	rep := &ChaosReport{}
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for tnt := 0; tnt < chaosTenants; tnt++ {
		wg.Add(1)
		go func(tnt int) {
			defer wg.Done()
			tenant := fmt.Sprintf("chaos-%d", tnt)
			for i := tnt; i < len(kernels); i += chaosTenants {
				const maxAttempts = 12
				var chainErr error
				for attempt := 0; attempt < maxAttempts; attempt++ {
					var c *service.Client
					c, chainErr = service.DialWithOptions(sock, tenant, "", service.DialOptions{
						Retry:      30,
						Backoff:    time.Millisecond,
						MaxBackoff: 50 * time.Millisecond,
						Seed:       seed + int64(tnt*100+i),
						Metrics:    reg,
					})
					if chainErr == nil {
						chainErr = runParboilViaClient(c, kernels[i], natives[i])
						if chainErr != nil && retryableChaos(chainErr) {
							c.CountRetry()
						}
						c.Close()
					}
					if chainErr == nil || !retryableChaos(chainErr) {
						break
					}
				}
				mu.Lock()
				rep.Chains++
				if chainErr == nil {
					rep.OK++
				} else if firstErr == nil {
					firstErr = fmt.Errorf("tenant %d kernel %s: chain did not converge: %w",
						tnt, kernels[i].FullName(), chainErr)
				}
				mu.Unlock()
			}
		}(tnt)
	}
	wg.Wait()
	wire.SetFaultInjector(nil)
	if firstErr != nil {
		return nil, firstErr
	}
	rep.FaultsFired = inj.Counts()
	rep.Retries = reg.CounterTotal("client_retries_total")
	if w != nil {
		fmt.Fprintf(w, "chaos service: seed=%d chains=%d ok=%d client-retries=%d faults=%v\n",
			seed, rep.Chains, rep.OK, rep.Retries, rep.FaultsFired)
	}
	return rep, nil
}

// ChaosDaemonEnv carries the socket path to a process re-executed as
// the service-phase chaos daemon. Hosts of the harness (accelsim, the
// test binary) check it at startup and divert into ServeChaosDaemon.
const ChaosDaemonEnv = "ACCELSIM_CHAOS_DAEMON"

// ServeChaosDaemon is the child-process side of the service chaos
// phase: a clean two-device daemon on sock — no injector; phase B
// models a flaky transport as seen from the client — serving until
// stdin closes, then printing the drained final state for the parent
// to assert on. Never returns.
func ServeChaosDaemon(sock string) {
	rt := accelos.NewBoundedClusterRuntime(opencl.GetPlatforms(), cluster.LeastLoaded(), 2)
	srv := service.NewServer(rt, service.Options{})
	if err := srv.Start(sock); err != nil {
		fmt.Printf("ERR %v\n", err)
		os.Exit(1)
	}
	fmt.Println("READY")
	io.Copy(io.Discard, os.Stdin)
	srv.Close()
	fmt.Printf("FINAL mem=%d active=%d\n", rt.Memory().Used(), rt.ActiveExecutions())
	rt.Shutdown()
	os.Exit(0)
}

// SpawnChaosDaemon re-executes exe with args as a chaos daemon (via
// ChaosDaemonEnv) on a fresh socket and waits for it to come up. The
// returned stop function closes the daemon's stdin, waits for it to
// exit, and errors unless it drained to mem=0 active=0 — the no-leak
// half of the chaos contract.
func SpawnChaosDaemon(exe string, args ...string) (sock string, stop func() error, err error) {
	// os.MkdirTemp over the caller's choice: sockaddr_un caps the path
	// at ~104 bytes, which nested temp dirs routinely blow.
	dir, err := os.MkdirTemp("", "chaos")
	if err != nil {
		return "", nil, err
	}
	sock = filepath.Join(dir, "d.sock")
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), ChaosDaemonEnv+"="+sock)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	out := bufio.NewReader(stdout)
	line, err := out.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "READY" {
		cmd.Process.Kill()
		cmd.Wait()
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("chaos daemon startup: %q, %v", line, err)
	}
	stop = func() error {
		defer os.RemoveAll(dir)
		stdin.Close()
		var final string
		for {
			line, err := out.ReadString('\n')
			if err != nil {
				break
			}
			if strings.HasPrefix(line, "FINAL") {
				final = strings.TrimSpace(line)
			}
		}
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("chaos daemon exit: %w", err)
		}
		if final != "FINAL mem=0 active=0" {
			return fmt.Errorf("chaos daemon leaked state: %q, want FINAL mem=0 active=0", final)
		}
		return nil
	}
	return sock, stop, nil
}
