package experiments

import (
	"fmt"
	"sort"

	"repro/internal/accelos"
	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ClusterConfig parameterizes one cluster scheduling experiment.
type ClusterConfig struct {
	Devices   int    // pool size (heterogeneous: alternating platforms)
	Policy    string // placement policy name (cluster.PolicyNames)
	Tenants   int    // concurrent applications
	PerTenant int    // kernel execution requests per application
	Seed      uint64 // workload sampling seed
	Rebalance bool   // migrate work to drained devices
}

// ClusterReport is the outcome of one cluster experiment.
type ClusterReport struct {
	Config ClusterConfig
	Result *sim.ClusterResult
	// SerialCycles estimates the same workload run back to back on the
	// pool's first device — the single-device serial yardstick.
	SerialCycles int64
	// Speedup is SerialCycles / cluster makespan.
	Speedup float64
	// TenantShares are aggregate allocated-capacity fractions, and
	// ShareSpread is (max-min)/mean over tenants — 0 is perfectly fair.
	TenantShares map[string]float64
	ShareSpread  float64
}

// RunClusterExperiment simulates a multi-tenant workload over a device
// pool under the named placement policy.
func RunClusterExperiment(cfg ClusterConfig) (*ClusterReport, error) {
	if cfg.Devices < 1 {
		return nil, fmt.Errorf("experiments: cluster needs at least one device")
	}
	pol, err := cluster.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, err
	}
	devs := device.PoolOf(cfg.Devices)
	execs := workload.Tenants(devs, cfg.Tenants, cfg.PerTenant, cfg.Seed)
	sched := cluster.NewScheduler(pol, accelos.PlanWeighted)
	res := sim.RunCluster(devs, execs, sched, sim.ClusterOptions{Rebalance: cfg.Rebalance})

	var serial int64
	for _, e := range execs {
		serial += e.K.EstimateIsolatedCycles(devs[0]) * e.K.NumIters()
	}
	rep := &ClusterReport{
		Config:       cfg,
		Result:       res,
		SerialCycles: serial,
		TenantShares: res.TenantShares(),
	}
	if res.Makespan > 0 {
		rep.Speedup = float64(serial) / float64(res.Makespan)
	}
	rep.ShareSpread = ShareSpread(rep.TenantShares)
	return rep, nil
}

// ShareSpread returns (max-min)/mean over the share map (0 when fair or
// fewer than two tenants).
func ShareSpread(shares map[string]float64) float64 {
	if len(shares) < 2 {
		return 0
	}
	var min, max, sum float64
	first := true
	for _, s := range shares {
		if first {
			min, max = s, s
			first = false
		}
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
		sum += s
	}
	mean := sum / float64(len(shares))
	if mean <= 0 {
		return 0
	}
	return (max - min) / mean
}

// SortedTenants returns the share map's keys in stable order for
// reporting.
func SortedTenants(shares map[string]float64) []string {
	out := make([]string, 0, len(shares))
	for t := range shares {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
