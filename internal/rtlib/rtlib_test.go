package rtlib

import (
	"testing"
	"testing/quick"

	"repro/internal/interp"
	"repro/internal/ir"
)

func TestModuleCompilesAndIsFresh(t *testing.T) {
	m1, err := Module()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Module()
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("Module returned a shared instance; callers mutate it during linking")
	}
	for _, name := range []string{"rt_env_init", "rt_sched_wgroup", "rt_is_master_workitem",
		"rt_group_id", "rt_global_id", "rt_local_id", "rt_num_groups",
		"rt_local_size", "rt_global_size", "rt_global_offset", "rt_work_dim"} {
		f := m1.Lookup(name)
		if f == nil || f.IsDecl() {
			t.Errorf("runtime library missing definition of %s", name)
		}
	}
	// Mutating one copy must not affect the next.
	m1.Remove("rt_sched_wgroup")
	m3, _ := Module()
	if m3.Lookup("rt_sched_wgroup") == nil {
		t.Error("mutation of a returned module leaked into the cache")
	}
}

func TestBuildRT(t *testing.T) {
	rt := BuildRT(2, [3]int64{12, 3, 1}, [3]int64{64, 2, 1}, 4)
	if len(rt) != RTWords {
		t.Fatalf("RT has %d words, want %d", len(rt), RTWords)
	}
	if rt[RTNext] != 0 {
		t.Error("queue cursor must start at 0")
	}
	if rt[RTTotal] != 36 {
		t.Errorf("total = %d, want 36", rt[RTTotal])
	}
	if rt[RTChunk] != 4 || rt[RTDims] != 2 {
		t.Errorf("chunk/dims = %d/%d", rt[RTChunk], rt[RTDims])
	}
	if rt[RTVG] != 12 || rt[RTVG+1] != 3 || rt[RTVG+2] != 1 {
		t.Errorf("virtual grid wrong: %v", rt[RTVG:RTVG+3])
	}
	if rt[RTLS] != 64 || rt[RTLS+1] != 2 {
		t.Errorf("local sizes wrong: %v", rt[RTLS:RTLS+3])
	}
}

func TestReplacementTableComplete(t *testing.T) {
	m, err := Module()
	if err != nil {
		t.Fatal(err)
	}
	for builtin, repl := range Replacement {
		f := m.Lookup(repl)
		if f == nil || f.IsDecl() {
			t.Errorf("replacement %s for %s not defined in the library", repl, builtin)
			continue
		}
		// Replacements take (rt, sd, hdlr [, dim]).
		want := 4
		if builtin == "get_work_dim" {
			want = 3
		}
		if len(f.Params) != want {
			t.Errorf("%s has %d params, want %d", repl, len(f.Params), want)
		}
	}
}

// execRT runs one rtlib function on the interpreter with a prepared RT
// image and returns its result.
func execRT(t *testing.T, fn string, rtWords []int64, hdlr int64, dim int32) int64 {
	t.Helper()
	m, err := Module()
	if err != nil {
		t.Fatal(err)
	}
	// Wrap in a kernel so the interpreter can launch it.
	mach := interp.NewMachine(m)
	rtRegion := mach.NewRegion(RTWords*8, ir.Global)
	rtRegion.WriteInt64s(0, rtWords)
	sdRegion := mach.NewRegion(SDWords*8, ir.Local)

	// Build a tiny driver kernel in IR: out[0] = fn(rt, sd, hdlr[, dim]).
	out := mach.NewRegion(8, ir.Global)
	outT := ir.PointerTo(ir.I64T, ir.Global)
	rtT := ir.PointerTo(ir.I64T, ir.Global)
	sdT := ir.PointerTo(ir.I64T, ir.Local)
	pOut := &ir.Param{Nam: "out", Ty: outT, Idx: 0}
	pRT := &ir.Param{Nam: "rt", Ty: rtT, Idx: 1}
	pSD := &ir.Param{Nam: "sd", Ty: sdT, Idx: 2}
	drv := m.NewFunction("__driver", ir.VoidT, pOut, pRT, pSD)
	drv.Kernel = true
	b := ir.NewBuilder(drv)
	args := []ir.Value{pRT, pSD, ir.CI64(hdlr)}
	callee := m.Lookup(fn)
	if len(callee.Params) == 4 {
		args = append(args, ir.CI(int64(dim)))
	}
	res := b.Call(fn, callee.Ret, args...)
	v := ir.Value(res)
	if callee.Ret.Kind == ir.I32 {
		v = b.Cast(ir.SExt, res, ir.I64T)
	}
	b.Store(v, pOut)
	b.Ret(nil)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	launchArgs := []interp.Value{
		{K: ir.Pointer, P: interp.Ptr{R: out}},
		{K: ir.Pointer, P: interp.Ptr{R: rtRegion}},
		{K: ir.Pointer, P: interp.Ptr{R: sdRegion}},
	}
	if err := mach.Launch("__driver", launchArgs, interp.ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	return out.ReadInt64s(0, 1)[0]
}

// Property: the virtual-group ID decomposition in the runtime library
// inverts linearization for every dimension.
func TestGroupIDDecompositionProperty(t *testing.T) {
	f := func(gx8, gy8, gz8, seed uint8) bool {
		gx := int64(gx8%7) + 1
		gy := int64(gy8%5) + 1
		gz := int64(gz8%3) + 1
		total := gx * gy * gz
		hdlr := int64(seed) % total
		wantX := hdlr % gx
		wantY := (hdlr / gx) % gy
		wantZ := hdlr / (gx * gy)
		rt := BuildRT(3, [3]int64{gx, gy, gz}, [3]int64{32, 2, 2}, 1)
		return execRT(t, "rt_group_id", rt, hdlr, 0) == wantX &&
			execRT(t, "rt_group_id", rt, hdlr, 1) == wantY &&
			execRT(t, "rt_group_id", rt, hdlr, 2) == wantZ
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRuntimeSizesAndOffsets(t *testing.T) {
	rt := BuildRT(2, [3]int64{10, 4, 1}, [3]int64{64, 2, 1}, 1)
	if got := execRT(t, "rt_num_groups", rt, 0, 0); got != 10 {
		t.Errorf("rt_num_groups(0) = %d, want 10", got)
	}
	if got := execRT(t, "rt_num_groups", rt, 0, 1); got != 4 {
		t.Errorf("rt_num_groups(1) = %d, want 4", got)
	}
	if got := execRT(t, "rt_local_size", rt, 0, 0); got != 64 {
		t.Errorf("rt_local_size(0) = %d, want 64", got)
	}
	if got := execRT(t, "rt_global_size", rt, 0, 0); got != 640 {
		t.Errorf("rt_global_size(0) = %d, want 640", got)
	}
	if got := execRT(t, "rt_global_offset", rt, 0, 0); got != 0 {
		t.Errorf("rt_global_offset = %d, want 0", got)
	}
	if got := execRT(t, "rt_work_dim", rt, 0, 0); got != 2 {
		t.Errorf("rt_work_dim = %d, want 2", got)
	}
}

// TestSchedWgroupDrainsQueue simulates the dequeue protocol: repeated
// rt_sched_wgroup calls must hand out [0,total) in chunks and then
// signal termination.
func TestSchedWgroupDrainsQueue(t *testing.T) {
	m, err := Module()
	if err != nil {
		t.Fatal(err)
	}
	mach := interp.NewMachine(m)
	const total, chunk = 10, 4
	rtRegion := mach.NewRegion(RTWords*8, ir.Global)
	rtRegion.WriteInt64s(0, BuildRT(1, [3]int64{total, 1, 1}, [3]int64{32, 1, 1}, chunk))
	sdRegion := mach.NewRegion(SDWords*8, ir.Local)

	// Driver kernel calls rt_sched_wgroup once per launch.
	pRT := &ir.Param{Nam: "rt", Ty: ir.PointerTo(ir.I64T, ir.Global), Idx: 0}
	pSD := &ir.Param{Nam: "sd", Ty: ir.PointerTo(ir.I64T, ir.Local), Idx: 1}
	drv := m.NewFunction("__drv", ir.VoidT, pRT, pSD)
	drv.Kernel = true
	b := ir.NewBuilder(drv)
	b.Call("rt_sched_wgroup", ir.VoidT, pRT, pSD)
	b.Ret(nil)

	args := []interp.Value{
		{K: ir.Pointer, P: interp.Ptr{R: rtRegion}},
		{K: ir.Pointer, P: interp.Ptr{R: sdRegion}},
	}
	var handedOut []int64
	for i := 0; i < 5; i++ {
		if err := mach.Launch("__drv", args, interp.ND1(1, 1)); err != nil {
			t.Fatal(err)
		}
		sd := sdRegion.ReadInt64s(0, SDWords)
		if sd[SDStatus] == StatusTerminate {
			break
		}
		for vg := sd[SDBase]; vg < sd[SDEnd]; vg++ {
			handedOut = append(handedOut, vg)
		}
	}
	if len(handedOut) != total {
		t.Fatalf("dequeued %d virtual groups, want %d: %v", len(handedOut), total, handedOut)
	}
	for i, vg := range handedOut {
		if vg != int64(i) {
			t.Fatalf("virtual groups out of order: %v", handedOut)
		}
	}
	// Next call must terminate.
	if err := mach.Launch("__drv", args, interp.ND1(1, 1)); err != nil {
		t.Fatal(err)
	}
	if sdRegion.ReadInt64s(0, SDWords)[SDStatus] != StatusTerminate {
		t.Error("drained queue did not signal termination")
	}
}
