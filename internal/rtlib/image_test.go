package rtlib

import "testing"

// TestRTImageRoundtrip checks the byte image the host binds into the
// interpreter matches the word layout the transformed kernel reads, and
// that between-slice word rewrites land.
func TestRTImageRoundtrip(t *testing.T) {
	words := BuildRT(2, [3]int64{6, 5, 1}, [3]int64{8, 4, 1}, 3)
	img := EncodeRT(words)
	if len(img) != RTWords*8 {
		t.Fatalf("image size = %d, want %d", len(img), RTWords*8)
	}
	for i, w := range words {
		if got := Word(img, i); got != w {
			t.Errorf("word %d = %d, want %d", i, got, w)
		}
	}
	if Word(img, RTTotal) != 30 {
		t.Errorf("RTTotal = %d, want 30", Word(img, RTTotal))
	}

	// The host drives the dequeue cursor and slice horizon in place.
	PutWord(img, RTNext, 12)
	PutWord(img, RTTotal, 18)
	PutWord(img, RTChunk, 1)
	if Word(img, RTNext) != 12 || Word(img, RTTotal) != 18 || Word(img, RTChunk) != 1 {
		t.Errorf("rewritten words = next %d total %d chunk %d",
			Word(img, RTNext), Word(img, RTTotal), Word(img, RTChunk))
	}
	// Untouched geometry words survive the rewrite.
	if Word(img, RTVG) != 6 || Word(img, RTVG+1) != 5 || Word(img, RTLS) != 8 {
		t.Error("geometry words corrupted by cursor rewrite")
	}
}
