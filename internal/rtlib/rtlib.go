// Package rtlib provides the GPU scheduling runtime library that the
// accelOS JIT statically links into every transformed kernel (§6.3 of the
// paper), together with the memory layout the host runtime uses to build
// Virtual NDRanges in accelerator memory.
//
// The paper's "struct RT" (per kernel execution, in global memory) and
// "struct SD" (per work-group scheduling state, in local memory) are
// represented as long arrays with the fixed layouts below; the struct was
// only ever a carrier for these words.
package rtlib

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/clc"
	"repro/internal/ir"
)

// RT (runtime descriptor, global memory) word indices.
const (
	RTNext  = 0 // atomic dequeue cursor over the Virtual NDRange
	RTTotal = 1 // total number of virtual groups
	RTChunk = 2 // virtual groups handed out per scheduling operation
	RTDims  = 3 // dimensionality of the original NDRange
	RTVG    = 4 // RTVG+d: virtual group count in dimension d (3 words)
	RTLS    = 7 // RTLS+d: work-group size in dimension d (3 words)

	// RTWords is the size of the RT descriptor in 64-bit words.
	RTWords = 10
)

// SD (work-group scheduling state, local memory) word indices.
const (
	SDStatus = 0 // 0 = run, 1 = terminate
	SDBase   = 1 // first virtual group of the current chunk
	SDEnd    = 2 // one past the last virtual group of the current chunk

	// SDWords is the size of the SD block in 64-bit words.
	SDWords = 4
)

// StatusRun and StatusTerminate are the SDStatus values.
const (
	StatusRun       = 0
	StatusTerminate = 1
)

// Source is the CLC source of the scheduling library. rt_sched_wgroup
// performs the atomic dequeue of a chunk of virtual groups; the rt_*_id
// functions are the runtime replacements for the OpenCL work-item
// builtins (§6.2 step 3), decoding the linearized virtual group handle
// against the virtual grid stored in the RT descriptor.
const Source = `
/* accelOS GPU scheduling runtime library. */

void rt_env_init(global long* rt, local long* sd)
{
    sd[0] = 0; /* SDStatus = run */
    sd[1] = 0;
    sd[2] = 0;
}

void rt_sched_wgroup(global long* rt, local long* sd)
{
    long chunk = rt[2];
    long total = rt[1];
    long base = atom_add(&rt[0], chunk);
    if (base >= total) {
        sd[0] = 1; /* terminate */
    } else {
        long e = base + chunk;
        if (e > total) e = total;
        sd[0] = 0;
        sd[1] = base;
        sd[2] = e;
    }
}

int rt_is_master_workitem()
{
    return get_local_id(0) == 0 && get_local_id(1) == 0 && get_local_id(2) == 0;
}

long rt_group_id(global long* rt, local long* sd, long hdlr, int d)
{
    long gx = rt[4];
    long gy = rt[5];
    if (d == 0) return hdlr % gx;
    if (d == 1) return (hdlr / gx) % gy;
    return hdlr / (gx * gy);
}

long rt_local_id(global long* rt, local long* sd, long hdlr, int d)
{
    return get_local_id(d);
}

long rt_global_id(global long* rt, local long* sd, long hdlr, int d)
{
    return rt_group_id(rt, sd, hdlr, d) * rt[7 + d] + get_local_id(d);
}

long rt_num_groups(global long* rt, local long* sd, long hdlr, int d)
{
    return rt[4 + d];
}

long rt_local_size(global long* rt, local long* sd, long hdlr, int d)
{
    return rt[7 + d];
}

long rt_global_size(global long* rt, local long* sd, long hdlr, int d)
{
    return rt[4 + d] * rt[7 + d];
}

long rt_global_offset(global long* rt, local long* sd, long hdlr, int d)
{
    return 0;
}

int rt_work_dim(global long* rt, local long* sd, long hdlr)
{
    return (int)rt[3];
}
`

// Replacement maps each OpenCL work-item builtin to its runtime
// equivalent in the scheduling library.
var Replacement = map[string]string{
	"get_global_id":     "rt_global_id",
	"get_local_id":      "rt_local_id",
	"get_group_id":      "rt_group_id",
	"get_num_groups":    "rt_num_groups",
	"get_local_size":    "rt_local_size",
	"get_global_size":   "rt_global_size",
	"get_global_offset": "rt_global_offset",
	"get_work_dim":      "rt_work_dim",
}

var (
	once   sync.Once
	cached *ir.Module
	cerr   error
)

// Module returns a fresh deep copy of the compiled runtime library
// module, safe to link into (and be mutated alongside) a kernel module.
// Compilation happens once and is cached.
func Module() (*ir.Module, error) {
	once.Do(func() {
		cached, cerr = clc.Compile(Source, "rtlib")
		if cerr != nil {
			cerr = fmt.Errorf("rtlib: %w", cerr)
		}
	})
	if cerr != nil {
		return nil, cerr
	}
	return ir.CloneModule(cached), nil
}

// BuildRT fills a host-side image of the RT descriptor for a kernel
// execution whose original NDRange has the given dimensions, with the
// chunk size chosen by the adaptive scheduling policy.
func BuildRT(dims int, numGroups, localSize [3]int64, chunk int) []int64 {
	rt := make([]int64, RTWords)
	rt[RTNext] = 0
	rt[RTTotal] = numGroups[0] * numGroups[1] * numGroups[2]
	rt[RTChunk] = int64(chunk)
	rt[RTDims] = int64(dims)
	for d := 0; d < 3; d++ {
		rt[RTVG+d] = numGroups[d]
		rt[RTLS+d] = localSize[d]
	}
	return rt
}

// EncodeRT renders the RT descriptor words as the little-endian byte
// image the transformed kernel dereferences as `global long*`. The host
// runtime binds this image into the interpreter machine and rewrites
// individual words between execution slices.
func EncodeRT(words []int64) []byte {
	b := make([]byte, len(words)*8)
	for i, w := range words {
		PutWord(b, i, w)
	}
	return b
}

// PutWord writes RT descriptor word idx into an encoded image — the
// host side of driving the dequeue cursor (RTNext), the slice horizon
// (RTTotal) and the chunk size (RTChunk) between slices.
func PutWord(img []byte, idx int, w int64) {
	binary.LittleEndian.PutUint64(img[idx*8:], uint64(w))
}

// Word reads RT descriptor word idx from an encoded image.
func Word(img []byte, idx int) int64 {
	return int64(binary.LittleEndian.Uint64(img[idx*8:]))
}
