package service

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/accelos"
	"repro/internal/opencl"
	"repro/internal/wire"
)

// TestRetryable pins the transient/fatal classification, including
// wrapped chains the way real call sites produce them.
func TestRetryable(t *testing.T) {
	refused := &net.OpError{Op: "dial", Net: "unix", Err: syscall.ECONNREFUSED}
	missing := &net.OpError{Op: "dial", Net: "unix",
		Err: &os.SyscallError{Syscall: "connect", Err: syscall.ENOENT}}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"backpressure", wire.ErrBackpressure, true},
		{"rate-limited", wire.ErrRateLimited, true},
		{"client-closed", ErrClientClosed, true},
		{"client-closed-wrapped", fmt.Errorf("%w: read: EOF", ErrClientClosed), true},
		{"dial-refused", refused, true},
		{"dial-socket-missing", missing, true},
		{"eof", io.EOF, true},
		{"unexpected-eof", io.ErrUnexpectedEOF, true},
		{"remote-backpressure", wire.CodeBackpressure.Err("window full"), true},
		{"bad-handshake", wire.ErrBadHandshake, false},
		{"unknown-tenant", wire.ErrUnknownTenant, false},
		{"remote-unknown-tenant", wire.CodeUnknownTenant.Err("bad token"), false},
		{"app-closed", accelos.ErrAppClosed, false},
		{"device-lost", accelos.ErrDeviceLost, false},
		{"kernel-timeout", accelos.ErrKernelTimeout, false},
		{"quarantined", accelos.ErrKernelQuarantined, false},
		{"admission-rejected", accelos.ErrAdmissionRejected, false},
		{"arbitrary", errors.New("something else"), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestBackoffSchedule checks the exponential shape, the cap, the jitter
// bound, and that a fixed seed reproduces the same schedule.
func TestBackoffSchedule(t *testing.T) {
	opts := DialOptions{Backoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 42}
	a, b := newBackoff(opts), newBackoff(opts)
	base := opts.Backoff
	for i := 0; i < 10; i++ {
		da, db := a.next(), b.next()
		if da != db {
			t.Fatalf("step %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < base || da > 2*base {
			t.Fatalf("step %d: delay %v outside [base, 2*base] for base %v", i, da, base)
		}
		base *= 2
		if base > opts.MaxBackoff {
			base = opts.MaxBackoff
		}
	}

	// Defaults kick in for the zero value.
	z := newBackoff(DialOptions{})
	if z.base != 10*time.Millisecond || z.max != time.Second {
		t.Fatalf("zero-value defaults = (%v, %v), want (10ms, 1s)", z.base, z.max)
	}
}

// TestDialWithOptionsFatalStopsRetrying proves a fatal error short-
// circuits the retry loop: against a daemon that rejects the tenant,
// the dial must fail immediately with the typed error even with a
// large Retry budget.
func TestDialWithOptionsFatalStopsRetrying(t *testing.T) {
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	_, sock := startService(t, rt, Options{Auth: map[string]string{"alice": "sesame"}})

	start := time.Now()
	_, err := DialWithOptions(sock, "mallory", "", DialOptions{
		Retry:   100,
		Backoff: 50 * time.Millisecond,
	})
	if !errors.Is(err, wire.ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("fatal dial error took %v — the retry loop did not short-circuit", d)
	}
}
