package service

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"time"

	"repro/internal/accelos"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// DialOptions configures client-side resilience for DialWithOptions.
// The zero value behaves exactly like Dial: one attempt, no backoff.
type DialOptions struct {
	// Retry is the number of additional dial attempts after the first
	// fails with a retryable error (so Retry=3 means up to 4 attempts).
	Retry int

	// Backoff is the delay before the first retry; each subsequent
	// retry doubles it up to MaxBackoff. Zero means 10ms.
	Backoff time.Duration

	// MaxBackoff caps the exponential growth. Zero means 1s.
	MaxBackoff time.Duration

	// Seed drives the jitter applied to every backoff sleep, so chaos
	// runs that fix the seed reproduce the same retry timing.
	Seed int64

	// Metrics, when set, receives client_retries_total{tenant} — one
	// increment per retry attempt (dial retries and any caller-level
	// retries counted through CountRetry).
	Metrics *telemetry.Registry
}

// Retryable classifies an error from Dial or a client call as transient
// (worth retrying against the same daemon) or fatal. Retryable:
//
//   - connection-level failures: any net.Error (dial refused, socket
//     missing during a daemon restart window, resets), io.EOF /
//     io.ErrUnexpectedEOF (peer went away mid-frame), and
//     ErrClientClosed (this client's connection died; redial and
//     rebuild state);
//   - load shedding: wire.ErrBackpressure and wire.ErrRateLimited —
//     the daemon is alive and will accept the work later.
//
// Fatal (retrying cannot help): wire.ErrBadHandshake and
// wire.ErrUnknownTenant (config/auth mismatch), accelos.ErrAppClosed
// (the tenant's session is gone on the server), and anything
// unrecognized.
//
// Note that retrying a *kernel enqueue* after a connection-level
// failure is NOT idempotent and is deliberately out of scope here: the
// kernel may have executed before the connection died, and replaying it
// would double-apply its side effects on buffers that survive in the
// daemon. Callers own replay decisions at chain granularity, where they
// can re-create state from host-resident inputs (see the chaos
// harness).
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	// Fatal classes first: some wrap net-level detail in their chains.
	if errors.Is(err, wire.ErrBadHandshake) ||
		errors.Is(err, wire.ErrUnknownTenant) ||
		errors.Is(err, accelos.ErrAppClosed) {
		return false
	}
	if errors.Is(err, wire.ErrBackpressure) || errors.Is(err, wire.ErrRateLimited) {
		return true
	}
	if errors.Is(err, ErrClientClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// backoffSchedule yields the sleep before each retry: exponential from
// opts.Backoff capped at opts.MaxBackoff, plus uniform jitter in
// [0, base] so a herd of restarting clients doesn't reconnect in
// lockstep.
type backoffSchedule struct {
	base, max time.Duration
	rng       *rand.Rand
}

func newBackoff(opts DialOptions) *backoffSchedule {
	b := &backoffSchedule{base: opts.Backoff, max: opts.MaxBackoff}
	if b.base <= 0 {
		b.base = 10 * time.Millisecond
	}
	if b.max <= 0 {
		b.max = time.Second
	}
	b.rng = rand.New(rand.NewSource(opts.Seed + 0x5eed))
	return b
}

func (b *backoffSchedule) next() time.Duration {
	d := b.base + time.Duration(b.rng.Int63n(int64(b.base)+1))
	b.base *= 2
	if b.base > b.max {
		b.base = b.max
	}
	return d
}

// DialWithOptions dials like Dial but retries transient failures with
// exponential backoff and jitter. A daemon that is restarting presents
// as "connection refused" or "no such file" for a window; Retry > 0
// rides that window out instead of surfacing it to the caller.
func DialWithOptions(path, tenant, token string, opts DialOptions) (*Client, error) {
	bo := newBackoff(opts)
	var err error
	for attempt := 0; ; attempt++ {
		var c *Client
		c, err = Dial(path, tenant, token)
		if err == nil {
			c.metrics = opts.Metrics
			return c, nil
		}
		if attempt >= opts.Retry || !Retryable(err) {
			return nil, err
		}
		opts.Metrics.Counter("client_retries_total", telemetry.L("tenant", tenant)).Add(1)
		time.Sleep(bo.next())
	}
}

// CountRetry records one caller-level retry (a chain replayed after a
// transient failure) under the same client_retries_total counter the
// dial path uses. No-op without Metrics.
func (c *Client) CountRetry() {
	c.metrics.Counter("client_retries_total", telemetry.L("tenant", c.tenant)).Add(1)
}
