package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/opencl"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// ErrClientClosed fails calls and pending events once the client (or
// the connection under it) is closed.
var ErrClientClosed = errors.New("service: client closed")

// Client is the out-of-process ProxyCL shim: the same surface as
// accelos.App — programs, buffers, kernels, async enqueues with wait
// lists, Finish — backed by a daemon in another process. Events
// returned here are local mirrors completed by the daemon's
// MsgEventDone frames; buffer bytes live in shared-memory segments
// mapped into both processes, so Write/ReadAsync move bytes only
// between the caller's slices and the mapping, never over the socket.
//
// A Client is safe for concurrent use. Wait-list events must have been
// produced by this Client (or already be terminal); events from other
// sources can gate writes — whose dependencies resolve client-side —
// but not kernel launches or reads, which order inside the daemon.
type Client struct {
	nc     net.Conn
	tenant string

	// ctx spans the connection's lifetime; shutdown cancels it, which
	// unblocks every WaitContext parked on a mirror event. This bounds
	// the client's blocking paths by the connection: no wait can outlive
	// the socket it is waiting on.
	ctx     context.Context
	cancel  context.CancelFunc
	metrics *telemetry.Registry // optional, from DialOptions

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	closed  bool
	callErr error // why the connection died, for late callers
	nextReq uint64
	calls   map[uint64]chan wire.Frame
	events  map[uint64]*pendingEvent
	evIDs   map[*opencl.Event]uint64
	bufs    map[*RemoteBuffer]struct{}

	group opencl.EventGroup
}

// pendingEvent is a local mirror awaiting its MsgEventDone.
type pendingEvent struct {
	ev *opencl.Event
	// onDone runs before Complete on success — the read path's
	// copy-out of the shared mapping.
	onDone func()
}

// Dial connects to a daemon socket and runs the authenticated
// handshake.
func Dial(path, tenant, token string) (*Client, error) {
	nc, err := net.Dial("unix", path)
	if err != nil {
		return nil, err
	}
	hello := wire.Hello{Version: wire.Version, Tenant: tenant, Token: token}
	if err := wire.WriteFrame(nc, wire.MsgHello, 0, hello.Encode()); err != nil {
		nc.Close()
		return nil, err
	}
	f, err := wire.ReadFrame(nc)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("service: handshake: %w", err)
	}
	var w wire.Welcome
	if f.Type != wire.MsgWelcome || w.Decode(f.Body) != nil {
		nc.Close()
		return nil, fmt.Errorf("service: handshake: unexpected %v frame", f.Type)
	}
	if w.Code != wire.CodeOK {
		nc.Close()
		return nil, w.Code.Err(w.Msg)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		nc:     nc,
		tenant: tenant,
		ctx:    ctx,
		cancel: cancel,
		calls:  make(map[uint64]chan wire.Frame),
		events: make(map[uint64]*pendingEvent),
		evIDs:  make(map[*opencl.Event]uint64),
		bufs:   make(map[*RemoteBuffer]struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down: pending calls and events fail with
// ErrClientClosed, mappings are unmapped, and the daemon — seeing the
// disconnect — releases the tenant's buffers and cancels its in-flight
// launches.
func (c *Client) Close() error {
	c.shutdown(ErrClientClosed)
	return nil
}

func (c *Client) shutdown(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.callErr = cause
	calls := c.calls
	events := c.events
	bufs := c.bufs
	c.calls = nil
	c.events = nil
	c.evIDs = nil
	c.bufs = nil
	c.mu.Unlock()

	c.nc.Close()
	c.cancel()
	for _, ch := range calls {
		close(ch)
	}
	for _, pe := range events {
		pe.ev.Fail(cause)
	}
	for b := range bufs {
		b.unmap()
	}
}

// waitEvent blocks on a mirror event, bounded by the connection's
// lifetime. shutdown fails every registered mirror, so the context leg
// only matters for waits that raced registration teardown — it turns a
// would-be hang into the typed connection-death error.
func (c *Client) waitEvent(ev *opencl.Event) error {
	err := ev.WaitContext(c.ctx)
	if errors.Is(err, context.Canceled) {
		c.mu.Lock()
		cause := c.callErr
		c.mu.Unlock()
		if cause != nil {
			return cause
		}
		return ErrClientClosed
	}
	return err
}

func (c *Client) readLoop() {
	for {
		f, err := wire.ReadFrame(c.nc)
		if err != nil {
			c.shutdown(fmt.Errorf("%w: %v", ErrClientClosed, err))
			return
		}
		if f.Type == wire.MsgEventDone {
			var st wire.Status
			if st.Decode(f.Body) != nil {
				continue
			}
			c.mu.Lock()
			pe := c.events[f.Req]
			if pe != nil {
				delete(c.events, f.Req)
				delete(c.evIDs, pe.ev)
			}
			c.mu.Unlock()
			if pe == nil {
				continue
			}
			if st.Code != wire.CodeOK {
				pe.ev.Fail(st.Code.Err(st.Msg))
			} else {
				if pe.onDone != nil {
					pe.onDone()
				}
				pe.ev.Complete()
			}
			continue
		}
		c.mu.Lock()
		ch := c.calls[f.Req]
		delete(c.calls, f.Req)
		c.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

func (c *Client) send(t wire.MsgType, req uint64, body []byte) error {
	c.wmu.Lock()
	err := wire.WriteFrame(c.nc, t, req, body)
	c.wmu.Unlock()
	if err != nil {
		// Wrap before returning too, so the caller sees the same typed
		// connection-death error as every pending call and event.
		err = fmt.Errorf("%w: %v", ErrClientClosed, err)
		c.shutdown(err)
	}
	return err
}

// call runs one synchronous request: register a reply slot, send, wait.
func (c *Client) call(t wire.MsgType, body []byte) (wire.Frame, error) {
	c.mu.Lock()
	if c.closed {
		err := c.callErr
		c.mu.Unlock()
		return wire.Frame{}, err
	}
	c.nextReq++
	req := c.nextReq
	ch := make(chan wire.Frame, 1)
	c.calls[req] = ch
	c.mu.Unlock()
	if err := c.send(t, req, body); err != nil {
		return wire.Frame{}, err
	}
	f, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.callErr
		c.mu.Unlock()
		return wire.Frame{}, err
	}
	if f.Type == wire.MsgError {
		var st wire.Status
		if err := st.Decode(f.Body); err != nil {
			return wire.Frame{}, err
		}
		return wire.Frame{}, st.Code.Err(st.Msg)
	}
	return f, nil
}

// Finish blocks until every event this client enqueued is terminal —
// the App.Finish analogue.
func (c *Client) Finish() {
	c.group.Wait()
}

// Outstanding reports incomplete mirror events.
func (c *Client) Outstanding() int {
	return c.group.Pending()
}

// RemoteProgram is a program compiled inside the daemon.
type RemoteProgram struct {
	c  *Client
	id uint64
}

// CreateProgram ships CLC source to the daemon for JIT compilation.
func (c *Client) CreateProgram(src string) (*RemoteProgram, error) {
	m := wire.ProgramCreate{Source: src}
	f, err := c.call(wire.MsgProgramCreate, m.Encode())
	if err != nil {
		return nil, err
	}
	var info wire.ProgramInfo
	if err := info.Decode(f.Body); err != nil {
		return nil, err
	}
	return &RemoteProgram{c: c, id: info.Prog}, nil
}

// RemoteKernel mirrors accelos.KernelHandle: argument bindings are
// staged locally and travel with each enqueue.
type RemoteKernel struct {
	c  *Client
	id uint64

	mu   sync.Mutex
	args []wire.KernelArg
	set  []bool
}

// CreateKernel resolves a kernel by name inside the daemon.
func (p *RemoteProgram) CreateKernel(name string) (*RemoteKernel, error) {
	m := wire.KernelCreate{Prog: p.id, Name: name}
	f, err := p.c.call(wire.MsgKernelCreate, m.Encode())
	if err != nil {
		return nil, err
	}
	var info wire.KernelInfo
	if err := info.Decode(f.Body); err != nil {
		return nil, err
	}
	return &RemoteKernel{
		c:    p.c,
		id:   info.Kernel,
		args: make([]wire.KernelArg, info.NumArgs),
		set:  make([]bool, info.NumArgs),
	}, nil
}

func (k *RemoteKernel) setArg(i int, a wire.KernelArg) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if i < 0 || i >= len(k.args) {
		return fmt.Errorf("service: argument %d out of range", i)
	}
	k.args[i] = a
	k.set[i] = true
	return nil
}

// SetArgBuffer binds a buffer argument.
func (k *RemoteKernel) SetArgBuffer(i int, b *RemoteBuffer) error {
	return k.setArg(i, wire.KernelArg{Kind: wire.ArgBuffer, Buffer: b.id})
}

// SetArgInt32 binds an int scalar argument.
func (k *RemoteKernel) SetArgInt32(i int, v int32) error {
	return k.setArg(i, wire.KernelArg{Kind: wire.ArgI32, I64: int64(v)})
}

// SetArgInt64 binds a long scalar argument.
func (k *RemoteKernel) SetArgInt64(i int, v int64) error {
	return k.setArg(i, wire.KernelArg{Kind: wire.ArgI64, I64: v})
}

// SetArgFloat32 binds a float scalar argument.
func (k *RemoteKernel) SetArgFloat32(i int, v float32) error {
	return k.setArg(i, wire.KernelArg{Kind: wire.ArgF32, F32: v})
}

// SetArgLocal binds a local-memory argument of the given byte size.
func (k *RemoteKernel) SetArgLocal(i int, size int64) error {
	if size <= 0 {
		return fmt.Errorf("service: local argument %d has non-positive size %d", i, size)
	}
	return k.setArg(i, wire.KernelArg{Kind: wire.ArgLocal, I64: size})
}

// snapshot copies the staged bindings for one enqueue.
func (k *RemoteKernel) snapshot() ([]wire.KernelArg, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for i, ok := range k.set {
		if !ok {
			return nil, fmt.Errorf("service: kernel argument %d not set", i)
		}
	}
	return append([]wire.KernelArg(nil), k.args...), nil
}

// RemoteBuffer is a device buffer whose backing is a shared-memory
// segment mapped into this process.
type RemoteBuffer struct {
	c    *Client
	id   uint64
	size int64

	mapMu    sync.RWMutex // guards the mapping against a concurrent unmap
	shm      *wire.Shm
	released bool
}

// CreateBuffer allocates a buffer in the daemon and maps its segment.
func (c *Client) CreateBuffer(size int64) (*RemoteBuffer, error) {
	m := wire.BufferCreate{Size: size}
	f, err := c.call(wire.MsgBufferCreate, m.Encode())
	if err != nil {
		return nil, err
	}
	var info wire.BufferInfo
	if err := info.Decode(f.Body); err != nil {
		return nil, err
	}
	shm, err := wire.OpenShm(info.Path)
	if err != nil {
		// Map failure orphans the server-side buffer; release it.
		rel := wire.BufferRelease{Buffer: info.Buffer}
		c.call(wire.MsgBufferRelease, rel.Encode())
		return nil, err
	}
	b := &RemoteBuffer{c: c, id: info.Buffer, size: info.Size, shm: shm}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		shm.Close()
		return nil, ErrClientClosed
	}
	c.bufs[b] = struct{}{}
	c.mu.Unlock()
	return b, nil
}

// Size returns the buffer size in bytes.
func (b *RemoteBuffer) Size() int64 { return b.size }

// Bytes exposes the raw shared mapping — writes through it are
// immediately visible to kernels in the daemon (and vice versa), with
// no transfer at all. The caller owns the consistency story: don't
// touch ranges a running kernel is using, and never after Release.
func (b *RemoteBuffer) Bytes() []byte {
	b.mapMu.RLock()
	defer b.mapMu.RUnlock()
	if b.released {
		return nil
	}
	return b.shm.Bytes
}

func (b *RemoteBuffer) unmap() {
	b.mapMu.Lock()
	defer b.mapMu.Unlock()
	if !b.released {
		b.released = true
		b.shm.Close()
	}
}

// Release drops the buffer on both sides of the boundary. In-flight
// commands that pinned it complete first (server-side refcounts); new
// commands fail with opencl.ErrBufferReleased.
func (b *RemoteBuffer) Release() {
	b.c.mu.Lock()
	if b.c.bufs != nil {
		delete(b.c.bufs, b)
	}
	b.c.mu.Unlock()
	b.unmap()
	m := wire.BufferRelease{Buffer: b.id}
	b.c.call(wire.MsgBufferRelease, m.Encode())
}

// enqueueEvent registers a mirror event for an enqueue under a fresh
// request id. Caller sends the frame with the returned id.
func (c *Client) enqueueEvent(waits []*opencl.Event, onDone func()) (uint64, *opencl.Event, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, nil, c.callErr
	}
	c.nextReq++
	req := c.nextReq
	ev := opencl.NewControlledEvent(waits...)
	c.events[req] = &pendingEvent{ev: ev, onDone: onDone}
	c.evIDs[ev] = req
	c.group.Add(ev)
	return req, ev, nil
}

// dropEvent unregisters a mirror whose frame never went out.
func (c *Client) dropEvent(req uint64) {
	c.mu.Lock()
	pe := c.events[req]
	if pe != nil {
		delete(c.events, req)
		delete(c.evIDs, pe.ev)
	}
	c.mu.Unlock()
}

// waitIDs maps wait-list events to daemon-side event ids. Terminal
// successes are pruned (the daemon already saw them complete);
// terminal failures short-circuit with the dependency's error; a live
// event this client didn't produce cannot be ordered inside the daemon
// and is rejected.
func (c *Client) waitIDs(waits []*opencl.Event) ([]uint64, error) {
	var ids []uint64
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range waits {
		if w == nil {
			continue
		}
		if id, ok := c.evIDs[w]; ok {
			ids = append(ids, id)
			continue
		}
		if w.Status().Terminal() {
			if err := w.Err(); err != nil {
				return nil, err
			}
			continue // already complete: nothing to order
		}
		return nil, errors.New("service: wait event was not produced by this client")
	}
	return ids, nil
}

// EnqueueKernelAsync launches a kernel in the daemon and returns its
// mirror event immediately; the launch starts once every wait-list
// event completes, and a failed dependency fails the event instead.
func (c *Client) EnqueueKernelAsync(k *RemoteKernel, nd opencl.NDRange, waits ...*opencl.Event) (*opencl.Event, error) {
	if err := nd.Validate(); err != nil {
		return nil, err
	}
	if err := opencl.CheckWaitList(waits...); err != nil {
		return nil, err
	}
	args, err := k.snapshot()
	if err != nil {
		return nil, err
	}
	ids, depErr := c.waitIDs(waits)
	req, ev, err := c.enqueueEvent(waits, nil)
	if err != nil {
		return nil, err
	}
	if depErr != nil {
		// A dependency already failed: mirror the in-process semantics
		// (the event fails; the enqueue itself succeeds) without
		// bothering the daemon.
		c.dropEvent(req)
		ev.Fail(depErr)
		return ev, nil
	}
	m := wire.EnqueueKernel{
		Kernel: k.id,
		Dims:   uint8(nd.Dims),
		Global: nd.Global,
		Local:  nd.Local,
		Args:   args,
		Waits:  ids,
	}
	if err := c.send(wire.MsgEnqueueKernel, req, m.Encode()); err != nil {
		return nil, err // shutdown already failed the mirror
	}
	return ev, nil
}

// EnqueueKernel launches and waits — the blocking wrapper.
func (c *Client) EnqueueKernel(k *RemoteKernel, nd opencl.NDRange) error {
	ev, err := c.EnqueueKernelAsync(k, nd)
	if err != nil {
		return err
	}
	return c.waitEvent(ev)
}

// WriteAsync schedules a host→buffer transfer and returns its mirror
// event. The bytes move with a single local copy into the shared
// mapping — nothing crosses the socket but the completion signal. The
// copy happens once the wait list resolves, so waits may be any events
// (they gate client-side); data must stay untouched until the event
// completes.
func (b *RemoteBuffer) WriteAsync(off int64, data []byte, waits ...*opencl.Event) (*opencl.Event, error) {
	c := b.c
	if err := opencl.CheckWaitList(waits...); err != nil {
		return nil, err
	}
	if off < 0 || off+int64(len(data)) > b.size {
		return nil, fmt.Errorf("service: write [%d,%d) outside buffer of %d bytes", off, off+int64(len(data)), b.size)
	}
	req, ev, err := c.enqueueEvent(waits, nil)
	if err != nil {
		return nil, err
	}
	// Announce the transfer first so later enqueues can name it in
	// wait lists; the daemon's event completes only on our CopyDone.
	m := wire.EnqueueCopy{Dir: wire.CopyWrite, Buffer: b.id, Off: off, N: int64(len(data))}
	if err := c.send(wire.MsgEnqueueCopy, req, m.Encode()); err != nil {
		return nil, err
	}
	opencl.WhenAll(waits, func(depErr error) {
		st := wire.Status{Code: wire.CodeOK}
		switch {
		case depErr != nil:
			st = wire.Status{Code: wire.CodeOf(depErr), Msg: depErr.Error()}
		case !b.copyIn(off, data):
			st = wire.Status{Code: wire.CodeBufferReleased, Msg: "service: buffer released before write landed"}
		}
		c.send(wire.MsgCopyDone, req, st.Encode())
	})
	return ev, nil
}

// copyIn lands bytes in the mapping unless it is gone.
func (b *RemoteBuffer) copyIn(off int64, data []byte) bool {
	b.mapMu.RLock()
	defer b.mapMu.RUnlock()
	if b.released {
		return false
	}
	copy(b.shm.Bytes[off:], data)
	return true
}

// copyOut reads bytes from the mapping unless it is gone.
func (b *RemoteBuffer) copyOut(off int64, out []byte) bool {
	b.mapMu.RLock()
	defer b.mapMu.RUnlock()
	if b.released {
		return false
	}
	copy(out, b.shm.Bytes[off:int(off)+len(out)])
	return true
}

// ReadAsync schedules a buffer→host transfer: the daemon signals once
// the wait list (the producing kernels) resolves, and the bytes are
// copied out of the shared mapping into out when the signal lands.
func (b *RemoteBuffer) ReadAsync(off int64, out []byte, waits ...*opencl.Event) (*opencl.Event, error) {
	c := b.c
	if err := opencl.CheckWaitList(waits...); err != nil {
		return nil, err
	}
	if off < 0 || off+int64(len(out)) > b.size {
		return nil, fmt.Errorf("service: read [%d,%d) outside buffer of %d bytes", off, off+int64(len(out)), b.size)
	}
	ids, depErr := c.waitIDs(waits)
	req, ev, err := c.enqueueEvent(waits, func() {
		if !b.copyOut(off, out) {
			// Mapping died between the daemon's signal and the copy;
			// the event still completes — matching a released buffer's
			// in-flight read, whose failure the daemon reports itself.
		}
	})
	if err != nil {
		return nil, err
	}
	if depErr != nil {
		c.dropEvent(req)
		ev.Fail(depErr)
		return ev, nil
	}
	m := wire.EnqueueCopy{Dir: wire.CopyRead, Buffer: b.id, Off: off, N: int64(len(out)), Waits: ids}
	if err := c.send(wire.MsgEnqueueCopy, req, m.Encode()); err != nil {
		return nil, err
	}
	return ev, nil
}

// Write copies host bytes into the buffer, blocking until complete.
func (b *RemoteBuffer) Write(off int64, data []byte) error {
	ev, err := b.WriteAsync(off, data)
	if err != nil {
		return err
	}
	return b.c.waitEvent(ev)
}

// Read copies buffer bytes back to the host, blocking until complete.
func (b *RemoteBuffer) Read(off int64, out []byte) error {
	ev, err := b.ReadAsync(off, out)
	if err != nil {
		return err
	}
	return b.c.waitEvent(ev)
}
