// Package service is the out-of-process accelOS boundary: a daemon
// (Server, wrapped by cmd/acceld) hosting one accelos.Runtime behind a
// unix socket, and a client shim (Dial) exposing the same ProxyCL
// surface as accelos.App to other processes.
//
// The transport is the internal/wire protocol. Each accepted connection
// registers as one tenant App; enqueues map onto the runtime's async
// event machinery and are answered out of order — one MsgEventDone per
// enqueue when its event turns terminal. Buffers are backed by
// shared-memory segments created server-side and mmap'd by the client,
// so buffer bytes never ride the socket: kernel launches bind the
// client's own pages (interp.Machine.BindRegion) and "transfers" are
// pure event signaling.
//
// The server defends itself the way the paper's daemon must: a
// handshake deadline and per-frame write deadlines evict slow or
// hostile clients, a per-connection in-flight window applies
// backpressure, per-tenant token buckets rate-limit enqueues before
// they reach the admission controller, and a dropped connection
// releases the tenant's buffers — cancelling its in-flight launches at
// their next slice boundary.
package service

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/accelos"
	"repro/internal/opencl"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Options tunes a Server. The zero value serves: open auth, a 1024-deep
// in-flight window, no rate limit, 10s handshake and write deadlines.
type Options struct {
	// Auth maps tenant name → token. nil admits any tenant (the
	// paper's single-user workstation mode); non-nil rejects unknown
	// tenants and wrong tokens at the handshake.
	Auth map[string]string

	// MaxInflight bounds each connection's unanswered enqueues. Above
	// it, enqueues fail immediately with CodeBackpressure instead of
	// queueing unboundedly inside the daemon.
	MaxInflight int

	// RatePerSec, when positive, token-bucket rate-limits each tenant's
	// enqueues across all of its connections. Burst is the bucket
	// depth (defaults to max(1, RatePerSec)).
	RatePerSec float64
	Burst      int

	// HandshakeTimeout bounds how long a fresh connection may sit
	// before completing the hello exchange; WriteTimeout bounds every
	// reply frame. Exceeding either evicts the connection.
	HandshakeTimeout time.Duration
	WriteTimeout     time.Duration

	// ShmDir is where buffer segments are created (os.TempDir() when
	// empty). It must be on a filesystem that supports shared mappings.
	ShmDir string

	// Telemetry sinks (optional).
	Tracer  *telemetry.Tracer
	Metrics *telemetry.Registry
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.MaxInflight <= 0 {
		v.MaxInflight = 1024
	}
	if v.HandshakeTimeout <= 0 {
		v.HandshakeTimeout = 10 * time.Second
	}
	if v.WriteTimeout <= 0 {
		v.WriteTimeout = 10 * time.Second
	}
	if v.Burst <= 0 {
		v.Burst = int(v.RatePerSec)
		if v.Burst < 1 {
			v.Burst = 1
		}
	}
	return v
}

// Server multiplexes wire-protocol clients onto one accelos.Runtime.
type Server struct {
	rt   *accelos.Runtime
	opts Options

	mu      sync.Mutex
	ln      net.Listener
	conns   map[*conn]struct{}
	buckets map[string]*bucket
	closed  bool
	wg      sync.WaitGroup
}

// NewServer wraps a runtime in a wire-protocol daemon.
func NewServer(rt *accelos.Runtime, opts Options) *Server {
	return &Server{
		rt:      rt,
		opts:    opts.withDefaults(),
		conns:   make(map[*conn]struct{}),
		buckets: make(map[string]*bucket),
	}
}

// Start listens on a unix socket at path (replacing a stale socket
// file) and serves in the background until Close.
func (s *Server) Start(path string) error {
	if st, err := os.Stat(path); err == nil && st.Mode()&os.ModeSocket != 0 {
		os.Remove(path)
	}
	ln, err := net.Listen("unix", path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("service: server closed")
	}
	s.ln = ln
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		s.serve(ln)
	}()
	return nil
}

func (s *Server) serve(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		c := &conn{
			s:      s,
			nc:     nc,
			progs:  make(map[uint64]*accelos.Program),
			kerns:  make(map[uint64]*accelos.KernelHandle),
			bufs:   make(map[uint64]*connBuf),
			events: make(map[uint64]*opencl.Event),
			manual: make(map[uint64]*opencl.Event),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			c.serve()
		}()
	}
}

// NumConns reports admitted, not-yet-torn-down connections.
func (s *Server) NumConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Close stops accepting, evicts every connection (releasing its
// buffers and cancelling its in-flight launches), and waits for the
// connection goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.nc.Close() // unblocks the read loop; its deferred teardown cleans up
	}
	s.wg.Wait()
	return nil
}

func (s *Server) dropConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// allow spends one token from the tenant's bucket.
func (s *Server) allow(tenant string) bool {
	if s.opts.RatePerSec <= 0 {
		return true
	}
	s.mu.Lock()
	b := s.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: float64(s.opts.Burst), last: time.Now()}
		s.buckets[tenant] = b
	}
	s.mu.Unlock()
	return b.take(s.opts.RatePerSec, float64(s.opts.Burst))
}

type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func (b *bucket) take(rate, burst float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * rate
	b.last = now
	if b.tokens > burst {
		b.tokens = burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func (s *Server) counter(name, tenant string, extra ...telemetry.Label) *telemetry.Counter {
	if s.opts.Metrics == nil {
		return nil
	}
	labels := append([]telemetry.Label{telemetry.L("tenant", tenant)}, extra...)
	return s.opts.Metrics.Counter(name, labels...)
}

// connBuf is one client buffer: the runtime handle plus the
// shared-memory segment that backs it.
type connBuf struct {
	h        *accelos.BufferHandle
	path     string
	size     int64
	released bool
}

// conn is one client connection = one tenant App.
type conn struct {
	s      *Server
	nc     net.Conn
	tenant string
	app    *accelos.App

	wmu sync.Mutex // serializes reply frames

	mu       sync.Mutex
	torndown bool
	nextObj  uint64
	inflight int
	progs    map[uint64]*accelos.Program
	kerns    map[uint64]*accelos.KernelHandle
	bufs     map[uint64]*connBuf
	// events holds every enqueue's event keyed by its request id, so
	// later enqueues can wait on it. Entries live for the connection:
	// clients prune terminal waits locally, so steady-state wait lists
	// only name live events.
	events map[uint64]*opencl.Event
	// manual holds write-transfer events the CLIENT completes (via
	// MsgCopyDone once its bytes landed in the mapping). Teardown must
	// fail these — a dead client will never signal them.
	manual map[uint64]*opencl.Event
}

func (c *conn) serve() {
	defer c.teardown()
	if !c.handshake() {
		return
	}
	for {
		f, err := wire.ReadFrame(c.nc)
		if err != nil {
			return
		}
		if err := c.dispatch(f); err != nil {
			// Protocol violation: drop the connection.
			c.countEviction("protocol")
			return
		}
	}
}

// handshake runs the versioned hello exchange under its own deadline
// and registers the tenant App. It reports whether the connection was
// admitted; rejected connections get a Welcome explaining why.
func (c *conn) handshake() bool {
	s := c.s
	c.nc.SetReadDeadline(time.Now().Add(s.opts.HandshakeTimeout))
	f, err := wire.ReadFrame(c.nc)
	if err != nil {
		c.countEviction("handshake-timeout")
		return false
	}
	var hello wire.Hello
	if f.Type != wire.MsgHello || hello.Decode(f.Body) != nil {
		c.reject(f.Req, wire.CodeBadHandshake, "first frame must be a hello")
		return false
	}
	if hello.Version != wire.Version {
		c.reject(f.Req, wire.CodeBadHandshake,
			fmt.Sprintf("protocol version %d, server speaks %d", hello.Version, wire.Version))
		return false
	}
	if s.opts.Auth != nil {
		tok, ok := s.opts.Auth[hello.Tenant]
		if !ok || tok != hello.Token {
			c.reject(f.Req, wire.CodeUnknownTenant, fmt.Sprintf("tenant %q", hello.Tenant))
			return false
		}
	}
	c.nc.SetReadDeadline(time.Time{})
	c.tenant = hello.Tenant
	c.app = s.rt.Connect(hello.Tenant)
	if ctr := s.counter("service_connections_total", c.tenant); ctr != nil {
		ctr.Inc()
	}
	w := wire.Welcome{Code: wire.CodeOK, Version: wire.Version}
	return c.writeFrame(wire.MsgWelcome, f.Req, w.Encode()) == nil
}

// reject answers a failed handshake and counts it.
func (c *conn) reject(req uint64, code wire.Code, msg string) {
	if ctr := c.s.counter("service_rejections_total", c.tenant,
		telemetry.L("reason", code.String())); ctr != nil {
		ctr.Inc()
	}
	w := wire.Welcome{Code: code, Msg: msg, Version: wire.Version}
	c.writeFrame(wire.MsgWelcome, req, w.Encode())
}

// teardown is the mid-launch-disconnect path: fail the events only the
// client could complete, close the tenant App — which releases every
// buffer it still holds and cancels its in-flight launches at their
// next slice boundary — and drain the cancelled tail so the runtime is
// clean before the connection is forgotten.
func (c *conn) teardown() {
	c.mu.Lock()
	if c.torndown {
		c.mu.Unlock()
		return
	}
	c.torndown = true
	manual := make([]*opencl.Event, 0, len(c.manual))
	for _, ev := range c.manual {
		manual = append(manual, ev)
	}
	c.manual = nil
	c.mu.Unlock()

	c.nc.Close()
	for _, ev := range manual {
		ev.Fail(fmt.Errorf("service: client disconnected before completing transfer: %w", accelos.ErrAppClosed))
	}
	if c.app != nil {
		c.app.Close()
		c.app.Finish()
		if ctr := c.s.counter("service_disconnects_total", c.tenant); ctr != nil {
			ctr.Inc()
		}
	}
	c.s.dropConn(c)
}

// writeFrame sends one reply under the write deadline; a slow client
// whose socket buffer stays full past the deadline is evicted.
func (c *conn) writeFrame(t wire.MsgType, req uint64, body []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.nc.SetWriteDeadline(time.Now().Add(c.s.opts.WriteTimeout))
	err := wire.WriteFrame(c.nc, t, req, body)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			c.countEviction("write-timeout")
		}
		c.nc.Close() // read loop unblocks; teardown runs there
	}
	return err
}

func (c *conn) countEviction(reason string) {
	if ctr := c.s.counter("service_evictions_total", c.tenant,
		telemetry.L("reason", reason)); ctr != nil {
		ctr.Inc()
	}
}

func (c *conn) countRequest(op string) {
	if ctr := c.s.counter("service_requests_total", c.tenant,
		telemetry.L("op", op)); ctr != nil {
		ctr.Inc()
	}
}

// replyErr answers a synchronous request with a typed error code.
func (c *conn) replyErr(req uint64, err error) {
	st := wire.Status{Code: wire.CodeOf(err), Msg: err.Error()}
	c.writeFrame(wire.MsgError, req, st.Encode())
}

// eventDone reports an enqueue's terminal state. An enqueue rejected
// before an event existed (backpressure, rate limit, unknown ids)
// reports through the same frame, so the client surface stays uniform:
// every enqueue gets exactly one MsgEventDone.
func (c *conn) eventDone(req uint64, err error) {
	var st wire.Status
	if err != nil {
		st = wire.Status{Code: wire.CodeOf(err), Msg: err.Error()}
	}
	c.writeFrame(wire.MsgEventDone, req, st.Encode())
}

func (c *conn) dispatch(f wire.Frame) error {
	switch f.Type {
	case wire.MsgProgramCreate:
		var m wire.ProgramCreate
		if err := m.Decode(f.Body); err != nil {
			return err
		}
		// Compilation is slow: handle off the read loop so the
		// connection stays responsive (and replies go out of order).
		go c.handleProgramCreate(f.Req, m.Source)
		return nil
	case wire.MsgBufferCreate:
		var m wire.BufferCreate
		if err := m.Decode(f.Body); err != nil {
			return err
		}
		// Allocation may pause (memory oversubscription): also async.
		go c.handleBufferCreate(f.Req, m.Size)
		return nil
	case wire.MsgKernelCreate:
		var m wire.KernelCreate
		if err := m.Decode(f.Body); err != nil {
			return err
		}
		c.handleKernelCreate(f.Req, m)
		return nil
	case wire.MsgBufferRelease:
		var m wire.BufferRelease
		if err := m.Decode(f.Body); err != nil {
			return err
		}
		c.handleBufferRelease(f.Req, m)
		return nil
	case wire.MsgEnqueueKernel:
		var m wire.EnqueueKernel
		if err := m.Decode(f.Body); err != nil {
			return err
		}
		c.handleEnqueueKernel(f.Req, m)
		return nil
	case wire.MsgEnqueueCopy:
		var m wire.EnqueueCopy
		if err := m.Decode(f.Body); err != nil {
			return err
		}
		c.handleEnqueueCopy(f.Req, m)
		return nil
	case wire.MsgCopyDone:
		var st wire.Status
		if err := st.Decode(f.Body); err != nil {
			return err
		}
		c.handleCopyDone(f.Req, st)
		return nil
	}
	return fmt.Errorf("service: unexpected frame %v", f.Type)
}

func (c *conn) span(name string, start time.Time) {
	if tr := c.s.opts.Tracer; tr != nil {
		tr.Complete(0, "service", c.tenant, "service", name, start, time.Now())
	}
}

func (c *conn) handleProgramCreate(req uint64, src string) {
	start := time.Now()
	c.countRequest("program-create")
	p, err := c.app.CreateProgram(src)
	if err != nil {
		c.replyErr(req, err)
		return
	}
	c.mu.Lock()
	if c.torndown {
		c.mu.Unlock()
		return
	}
	c.nextObj++
	id := c.nextObj
	c.progs[id] = p
	c.mu.Unlock()
	c.span("program-create", start)
	m := wire.ProgramInfo{Prog: id}
	c.writeFrame(wire.MsgProgramInfo, req, m.Encode())
}

func (c *conn) handleBufferCreate(req uint64, size int64) {
	start := time.Now()
	c.countRequest("buffer-create")
	shm, err := wire.CreateShm(c.s.opts.ShmDir, size)
	if err != nil {
		c.replyErr(req, err)
		return
	}
	// The segment's mapping IS the buffer's device backing; it is
	// unmapped and unlinked only once the buffer is truly dead (after
	// release, once the last in-flight command unpinned it).
	h, err := c.app.CreateBufferBacked(shm.Bytes, func() { shm.Close() })
	if err != nil {
		shm.Close()
		c.replyErr(req, err)
		return
	}
	c.mu.Lock()
	if c.torndown {
		// App.Close ran concurrently... but begin/end means
		// CreateBufferBacked either failed above or registered the
		// handle with the app before Close, in which case Close
		// released it. Either way just drop the reply.
		c.mu.Unlock()
		return
	}
	c.nextObj++
	id := c.nextObj
	c.bufs[id] = &connBuf{h: h, path: shm.Path, size: size}
	c.mu.Unlock()
	c.span("buffer-create", start)
	m := wire.BufferInfo{Buffer: id, Path: shm.Path, Size: size}
	c.writeFrame(wire.MsgBufferInfo, req, m.Encode())
}

func (c *conn) handleKernelCreate(req uint64, m wire.KernelCreate) {
	c.countRequest("kernel-create")
	c.mu.Lock()
	p := c.progs[m.Prog]
	c.mu.Unlock()
	if p == nil {
		c.replyErr(req, fmt.Errorf("program %d: %w", m.Prog, wire.ErrNotFound))
		return
	}
	k, err := p.CreateKernel(m.Name)
	if err != nil {
		c.replyErr(req, fmt.Errorf("%w: %v", wire.ErrBadRequest, err))
		return
	}
	c.mu.Lock()
	c.nextObj++
	id := c.nextObj
	c.kerns[id] = k
	numArgs := k.NumArgs()
	c.mu.Unlock()
	info := wire.KernelInfo{Kernel: id, NumArgs: uint32(numArgs)}
	c.writeFrame(wire.MsgKernelInfo, req, info.Encode())
}

func (c *conn) handleBufferRelease(req uint64, m wire.BufferRelease) {
	c.countRequest("buffer-release")
	c.mu.Lock()
	b := c.bufs[m.Buffer]
	if b != nil {
		b.released = true
	}
	c.mu.Unlock()
	if b == nil {
		c.replyErr(req, fmt.Errorf("buffer %d: %w", m.Buffer, wire.ErrNotFound))
		return
	}
	b.h.Release()
	c.writeFrame(wire.MsgAck, req, nil)
}

// admitEnqueue applies the per-connection backpressure window and the
// per-tenant rate limit, reserving an in-flight slot on success.
func (c *conn) admitEnqueue(req uint64) bool {
	c.mu.Lock()
	if c.inflight >= c.s.opts.MaxInflight {
		c.mu.Unlock()
		c.countRejection(wire.ErrBackpressure)
		c.eventDone(req, fmt.Errorf("%w (window %d)", wire.ErrBackpressure, c.s.opts.MaxInflight))
		return false
	}
	c.inflight++
	c.mu.Unlock()
	if !c.s.allow(c.tenant) {
		c.releaseSlot()
		c.countRejection(wire.ErrRateLimited)
		c.eventDone(req, fmt.Errorf("%w (%.3g/s)", wire.ErrRateLimited, c.s.opts.RatePerSec))
		return false
	}
	return true
}

func (c *conn) releaseSlot() {
	c.mu.Lock()
	c.inflight--
	c.mu.Unlock()
}

func (c *conn) countRejection(sentinel error) {
	if ctr := c.s.counter("service_rejections_total", c.tenant,
		telemetry.L("reason", wire.CodeOf(sentinel).String())); ctr != nil {
		ctr.Inc()
	}
}

// resolveWaits maps client wait ids to server-side events.
func (c *conn) resolveWaits(ids []uint64) ([]*opencl.Event, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	waits := make([]*opencl.Event, 0, len(ids))
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range ids {
		ev := c.events[id]
		if ev == nil {
			return nil, fmt.Errorf("wait event %d: %w", id, wire.ErrNotFound)
		}
		waits = append(waits, ev)
	}
	return waits, nil
}

// registerEvent files an enqueue's event under its request id and
// arranges the MsgEventDone reply (and the in-flight slot release) on
// completion.
func (c *conn) registerEvent(req uint64, ev *opencl.Event, op string, start time.Time) {
	c.mu.Lock()
	c.events[req] = ev
	c.mu.Unlock()
	ev.OnComplete(func(e *opencl.Event) {
		c.releaseSlot()
		if m := c.s.opts.Metrics; m != nil {
			m.Histogram("service_request_ns", telemetry.L("tenant", c.tenant),
				telemetry.L("op", op)).Observe(time.Since(start).Nanoseconds())
		}
		c.span(op, start)
		c.eventDone(req, e.Err())
	})
}

func (c *conn) handleEnqueueKernel(req uint64, m wire.EnqueueKernel) {
	start := time.Now()
	c.countRequest("enqueue-kernel")
	if !c.admitEnqueue(req) {
		return
	}
	c.mu.Lock()
	k := c.kerns[m.Kernel]
	c.mu.Unlock()
	if k == nil {
		c.releaseSlot()
		c.eventDone(req, fmt.Errorf("kernel %d: %w", m.Kernel, wire.ErrNotFound))
		return
	}
	waits, err := c.resolveWaits(m.Waits)
	if err == nil {
		err = c.bindArgs(k, m.Args)
	}
	if err != nil {
		c.releaseSlot()
		c.eventDone(req, err)
		return
	}
	nd := opencl.NDRange{Dims: int(m.Dims), Global: m.Global, Local: m.Local}
	ev, err := c.app.EnqueueKernelAsync(k, nd, waits...)
	if err != nil {
		c.releaseSlot()
		c.eventDone(req, err)
		return
	}
	c.registerEvent(req, ev, "enqueue-kernel", start)
}

// bindArgs applies a launch's argument bindings to the kernel handle.
// Enqueues are handled on the read loop, so the handle is never bound
// concurrently; EnqueueKernelAsync snapshots the bindings.
func (c *conn) bindArgs(k *accelos.KernelHandle, args []wire.KernelArg) error {
	for i, a := range args {
		var err error
		switch a.Kind {
		case wire.ArgBuffer:
			c.mu.Lock()
			b := c.bufs[a.Buffer]
			c.mu.Unlock()
			if b == nil {
				return fmt.Errorf("arg %d: buffer %d: %w", i, a.Buffer, wire.ErrNotFound)
			}
			err = k.SetArgBuffer(i, b.h)
		case wire.ArgI32:
			err = k.SetArgInt32(i, int32(a.I64))
		case wire.ArgI64:
			err = k.SetArgInt64(i, a.I64)
		case wire.ArgF32:
			err = k.SetArgFloat32(i, a.F32)
		case wire.ArgLocal:
			err = k.SetArgLocal(i, a.I64)
		default:
			err = fmt.Errorf("arg %d: unknown kind %d", i, a.Kind)
		}
		if err != nil {
			return fmt.Errorf("%w: %v", wire.ErrBadRequest, err)
		}
	}
	return nil
}

func (c *conn) handleEnqueueCopy(req uint64, m wire.EnqueueCopy) {
	start := time.Now()
	op := "enqueue-write"
	if m.Dir == wire.CopyRead {
		op = "enqueue-read"
	}
	c.countRequest(op)
	if !c.admitEnqueue(req) {
		return
	}
	c.mu.Lock()
	b := c.bufs[m.Buffer]
	c.mu.Unlock()
	switch {
	case b == nil:
		c.releaseSlot()
		c.eventDone(req, fmt.Errorf("buffer %d: %w", m.Buffer, wire.ErrNotFound))
		return
	case b.released:
		c.releaseSlot()
		c.eventDone(req, fmt.Errorf("buffer %d: %w", m.Buffer, opencl.ErrBufferReleased))
		return
	case m.Off < 0 || m.N < 0 || m.Off+m.N > b.size:
		c.releaseSlot()
		c.eventDone(req, fmt.Errorf("%w: copy [%d,%d) outside buffer of %d bytes",
			wire.ErrBadRequest, m.Off, m.Off+m.N, b.size))
		return
	}
	if mtr := c.s.opts.Metrics; mtr != nil {
		mtr.Counter("service_shm_bytes_total", telemetry.L("tenant", c.tenant),
			telemetry.L("op", op)).Add(m.N)
	}
	switch m.Dir {
	case wire.CopyWrite:
		// The client copies into the shared mapping once its own
		// dependencies resolve, then signals MsgCopyDone; nothing to
		// order server-side. The event exists so later enqueues can
		// wait on the transfer.
		ev, err := c.app.NewControlledEvent()
		if err != nil {
			c.releaseSlot()
			c.eventDone(req, err)
			return
		}
		c.mu.Lock()
		c.manual[req] = ev
		c.mu.Unlock()
		c.registerEvent(req, ev, op, start)
	case wire.CopyRead:
		// The event completes when the server-side dependencies (the
		// kernels producing the data) do; the client copies out of the
		// mapping when MsgEventDone lands.
		waits, err := c.resolveWaits(m.Waits)
		if err != nil {
			c.releaseSlot()
			c.eventDone(req, err)
			return
		}
		ev, err := c.app.NewControlledEvent()
		if err != nil {
			c.releaseSlot()
			c.eventDone(req, err)
			return
		}
		c.registerEvent(req, ev, op, start)
		ev.CompleteWhen(waits...)
	default:
		c.releaseSlot()
		c.eventDone(req, fmt.Errorf("%w: unknown copy direction %d", wire.ErrBadRequest, m.Dir))
	}
}

func (c *conn) handleCopyDone(req uint64, st wire.Status) {
	c.mu.Lock()
	ev := c.manual[req]
	delete(c.manual, req)
	c.mu.Unlock()
	if ev == nil {
		return // unknown or already torn down; EventDone already went out
	}
	if st.Code == wire.CodeOK {
		ev.Complete()
	} else {
		ev.Fail(st.Code.Err(st.Msg))
	}
}
