package service

// The integration suite for the out-of-process boundary. Tests that
// move verified data through the shared mappings run the daemon in a
// real child process (the test binary re-executed in daemon mode, see
// TestMain): that is the deployment shape the subsystem exists for,
// and it keeps the race detector honest — synchronization between the
// two sides flows through socket frames, which -race cannot see, so an
// in-process daemon would report false races on the shared pages.
// Control-path tests (backpressure, rate limits, eviction, admission)
// keep the server in-process so they can assert against the runtime's
// internals; their kernels run on pages only the daemon side touches.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/accelos"
	"repro/internal/cluster"
	"repro/internal/opencl"
	"repro/internal/parboil"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

const daemonEnv = "ACCELD_TEST_SOCKET"

func TestMain(m *testing.M) {
	if sock := os.Getenv(daemonEnv); sock != "" {
		runTestDaemon(sock)
		return
	}
	os.Exit(m.Run())
}

// runTestDaemon is the child-process mode: serve one runtime on the
// socket until stdin closes or SIGTERM arrives (the restart test kills
// the daemon out from under its clients that way), then tear down and
// report the runtime's final state for the parent to assert on.
func runTestDaemon(sock string) {
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	srv := NewServer(rt, Options{})
	if err := srv.Start(sock); err != nil {
		fmt.Printf("ERR %v\n", err)
		os.Exit(1)
	}
	fmt.Println("READY")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	eof := make(chan struct{})
	go func() {
		io.Copy(io.Discard, os.Stdin)
		close(eof)
	}()
	select {
	case <-sig:
	case <-eof:
	}
	srv.Close()
	fmt.Printf("FINAL mem=%d active=%d\n", rt.Memory().Used(), rt.ActiveExecutions())
	rt.Shutdown()
	os.Exit(0)
}

// daemon is a handle on an out-of-process test daemon.
type daemon struct {
	sock  string
	stdin io.WriteCloser
	out   *bufio.Reader
	cmd   *exec.Cmd
}

// startDaemon re-executes the test binary in daemon mode and waits for
// its socket to be live.
func startDaemon(t *testing.T) *daemon {
	t.Helper()
	// t.TempDir is too deep for sockaddr_un's ~104-byte path limit.
	dir, err := os.MkdirTemp("", "svc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	return startDaemonAt(t, filepath.Join(dir, "d.sock"))
}

// startDaemonAt runs the daemon on a caller-chosen socket path, so the
// restart test can bring a replacement up at the address its clients
// already hold.
func startDaemonAt(t *testing.T, sock string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(), daemonEnv+"="+sock)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{sock: sock, stdin: stdin, out: bufio.NewReader(stdout), cmd: cmd}
	t.Cleanup(func() {
		stdin.Close()
		cmd.Wait()
	})
	line, err := d.out.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "READY" {
		t.Fatalf("daemon did not come up: %q err=%v", line, err)
	}
	return d
}

// stop closes the daemon's stdin and returns its final-state report.
func (d *daemon) stop(t *testing.T) string {
	t.Helper()
	d.stdin.Close()
	return d.reap(t)
}

// sigterm kills the daemon the way a process manager would and returns
// its final-state report.
func (d *daemon) sigterm(t *testing.T) string {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal daemon: %v", err)
	}
	return d.reap(t)
}

func (d *daemon) reap(t *testing.T) string {
	t.Helper()
	line, err := d.out.ReadString('\n')
	if err != nil {
		t.Fatalf("daemon final report: %v", err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
	return strings.TrimSpace(line)
}

// startService runs an in-process server for control-path tests. The
// runtime is returned for assertions against its internals.
func startService(t *testing.T, rt *accelos.Runtime, opts Options) (*Server, string) {
	t.Helper()
	t.Cleanup(rt.Shutdown)
	dir, err := os.MkdirTemp("", "svc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	srv := NewServer(rt, opts)
	sock := filepath.Join(dir, "d.sock")
	if err := srv.Start(sock); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, sock
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

const svcVaddSrc = `
kernel void vadd(global const float* a, global const float* b, global float* c, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}
`

const svcIncSrc = `
kernel void inc(global int* out, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) out[i] = out[i] + 1;
}
`

// svcChurnSrc is a long-running kernel (mirrors the accelos test
// workload) so disconnect and admission tests can catch it in flight.
const svcChurnSrc = `
kernel void churn(global int* out, int n)
{
    local int scratch[1024];
    int l = (int)get_local_id(0);
    scratch[l] = l;
    barrier(1);
    int i = (int)get_global_id(0);
    int acc = 0;
    int t;
    for (t = 0; t < 300; ++t) acc += (i + t) & 7;
    if (i < n) out[i] = out[i] + scratch[l] + 1 + (acc & 0);
}
`

// svcHoldSrc burns enough per-item work (tens of ms for the full
// grid) that the admission test's first launch reliably still holds
// its device slot while the test races two more enqueues against it —
// sized to stay under the launch-global instruction budget even at
// tier-0 (unfused) step counts: 8192 items x 1500 iters x ~8 steps.
const svcHoldSrc = `
kernel void hold(global int* out, int n)
{
    int i = (int)get_global_id(0);
    int acc = 0;
    int t;
    for (t = 0; t < 1500; ++t) acc += (i + t) & 7;
    if (i < n) out[i] = out[i] + 1 + (acc & 0);
}
`

const svcPeerSrc = `
kernel void peer(global int* out, int n)
{
    local int scratch[1024];
    int l = (int)get_local_id(0);
    scratch[l] = 2 * l;
    barrier(1);
    int i = (int)get_global_id(0);
    if (i < n) out[i] = scratch[l];
}
`

// TestServiceEndToEnd drives one client through the whole surface
// against an out-of-process daemon — program, buffers, async uploads,
// kernel, read-back — and then proves the zero-copy story: mutating
// the client's mapping directly, with no Write at all, is visible to
// the next kernel launch, and the result is read straight out of the
// output buffer's mapping.
func TestServiceEndToEnd(t *testing.T) {
	d := startDaemon(t)
	c, err := Dial(d.sock, "e2e", "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prog, err := c.CreateProgram(svcVaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("vadd")
	if err != nil {
		t.Fatal(err)
	}
	const n = 1024
	a, err := c.CreateBuffer(n * 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.CreateBuffer(n * 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.CreateBuffer(n * 4)
	if err != nil {
		t.Fatal(err)
	}

	av := make([]byte, n*4)
	bv := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(av[i*4:], math.Float32bits(float32(i)))
		binary.LittleEndian.PutUint32(bv[i*4:], math.Float32bits(float32(3*i)))
	}
	evA, err := a.WriteAsync(0, av)
	if err != nil {
		t.Fatal(err)
	}
	evB, err := b.WriteAsync(0, bv)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(0, a); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(1, b); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(2, out); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgInt32(3, n); err != nil {
		t.Fatal(err)
	}
	kev, err := c.EnqueueKernelAsync(k, opencl.ND1(n, 64), evA, evB)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n*4)
	rev, err := out.ReadAsync(0, got, kev)
	if err != nil {
		t.Fatal(err)
	}
	if err := rev.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float32(4 * i)
		if v := math.Float32frombits(binary.LittleEndian.Uint32(got[i*4:])); v != want {
			t.Fatalf("c[%d] = %g, want %g", i, v, want)
		}
	}

	// Zero-copy: poke the input through the raw mapping — no WriteAsync,
	// nothing on the wire but the launch — and the daemon's kernel must
	// see the new values; the result is read out of the mapping too.
	ab := a.Bytes()
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(ab[i*4:], math.Float32bits(float32(2*i)))
	}
	if err := c.EnqueueKernel(k, opencl.ND1(n, 64)); err != nil {
		t.Fatal(err)
	}
	ob := out.Bytes()
	for i := 0; i < n; i++ {
		want := float32(5 * i)
		if v := math.Float32frombits(binary.LittleEndian.Uint32(ob[i*4:])); v != want {
			t.Fatalf("zero-copy c[%d] = %g, want %g", i, v, want)
		}
	}
	a.Release()
	b.Release()
	out.Release()
	c.Finish()
	if final := d.stop(t); final != "FINAL mem=0 active=0" {
		t.Fatalf("daemon final state %q", final)
	}
}

// parboilNative caches the in-process reference results (RunNative)
// for every Parboil kernel, shared across the parity and churn tests.
var (
	parboilOnce sync.Once
	parboilRef  [][][]byte
	parboilErr  error
)

func parboilNatives(t *testing.T) [][][]byte {
	t.Helper()
	parboilOnce.Do(func() {
		kernels := parboil.Kernels()
		parboilRef = make([][][]byte, len(kernels))
		for i, k := range kernels {
			ref, err := k.RunNative()
			if err != nil {
				parboilErr = fmt.Errorf("%s: %w", k.FullName(), err)
				return
			}
			parboilRef[i] = ref
		}
	})
	if parboilErr != nil {
		t.Fatal(parboilErr)
	}
	return parboilRef
}

// runParboilViaService replays a kernel's verification launch through
// the service boundary — uploads behind events, kernel behind the
// uploads, read-backs behind the kernel — and compares every buffer
// byte for byte against the in-process native reference.
func runParboilViaService(c *Client, k *parboil.Kernel, native [][]byte) error {
	prog, err := c.CreateProgram(k.Source)
	if err != nil {
		return fmt.Errorf("%s: program: %w", k.FullName(), err)
	}
	rk, err := prog.CreateKernel(k.Name)
	if err != nil {
		return fmt.Errorf("%s: kernel: %w", k.FullName(), err)
	}
	spec := k.Setup()
	bufs := make([]*RemoteBuffer, len(spec.Args))
	defer func() {
		for _, b := range bufs {
			if b != nil {
				b.Release()
			}
		}
	}()
	var uploads []*opencl.Event
	for i, a := range spec.Args {
		if a.Scalar != nil {
			if err := rk.SetArgInt32(i, int32(*a.Scalar)); err != nil {
				return err
			}
			continue
		}
		host := parboil.EncodeArg(a)
		if host == nil {
			return fmt.Errorf("%s: argument %q has no value", k.FullName(), a.Name)
		}
		b, err := c.CreateBuffer(int64(len(host)))
		if err != nil {
			return fmt.Errorf("%s: buffer %q: %w", k.FullName(), a.Name, err)
		}
		bufs[i] = b
		ev, err := b.WriteAsync(0, host)
		if err != nil {
			return fmt.Errorf("%s: write %q: %w", k.FullName(), a.Name, err)
		}
		uploads = append(uploads, ev)
		if err := rk.SetArgBuffer(i, b); err != nil {
			return err
		}
	}
	nd := opencl.NDRange{Dims: spec.Dims, Global: spec.Global, Local: spec.Local}
	kev, err := c.EnqueueKernelAsync(rk, nd, uploads...)
	if err != nil {
		return fmt.Errorf("%s: enqueue: %w", k.FullName(), err)
	}
	outs := make([][]byte, len(spec.Args))
	var reads []*opencl.Event
	for i, b := range bufs {
		if b == nil {
			continue
		}
		outs[i] = make([]byte, b.Size())
		ev, err := b.ReadAsync(0, outs[i], kev)
		if err != nil {
			return fmt.Errorf("%s: read %q: %w", k.FullName(), spec.Args[i].Name, err)
		}
		reads = append(reads, ev)
	}
	for _, ev := range reads {
		if err := ev.Wait(); err != nil {
			return fmt.Errorf("%s: pipeline: %w", k.FullName(), err)
		}
	}
	for i := range spec.Args {
		if outs[i] == nil {
			continue
		}
		if !bytes.Equal(native[i], outs[i]) {
			return fmt.Errorf("%s: buffer %d (%s) differs between native and service execution",
				k.FullName(), i, spec.Args[i].Name)
		}
	}
	return nil
}

// TestServiceParboilParity splits all 25 Parboil kernels across 8
// concurrent clients of one out-of-process daemon; every launch must
// be byte-identical to the in-process native run.
func TestServiceParboilParity(t *testing.T) {
	natives := parboilNatives(t)
	kernels := parboil.Kernels()
	d := startDaemon(t)

	const nClients = 8
	var wg sync.WaitGroup
	errs := make([]error, nClients)
	for w := 0; w < nClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(d.sock, fmt.Sprintf("parity-%d", w), "")
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			for i := w; i < len(kernels); i += nClients {
				if err := runParboilViaService(c, kernels[i], natives[i]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", w, err)
		}
	}
	if t.Failed() {
		return
	}
	if final := d.stop(t); final != "FINAL mem=0 active=0" {
		t.Fatalf("daemon final state %q", final)
	}
}

// TestServiceChurn64Clients is the headline scale test: 66 concurrent
// clients against one daemon, a third of which start launches and then
// vanish mid-flight, while the rest verify Parboil launches byte for
// byte. The daemon must survive the churn and converge to zero held
// memory and zero active executions.
func TestServiceChurn64Clients(t *testing.T) {
	natives := parboilNatives(t)
	kernels := parboil.Kernels()
	d := startDaemon(t)

	const nClients = 66
	var wg sync.WaitGroup
	errs := make([]error, nClients)
	for w := 0; w < nClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(d.sock, fmt.Sprintf("churn-%d", w), "")
			if err != nil {
				errs[w] = err
				return
			}
			if w%3 == 2 {
				// A churny client: start work, then disconnect abruptly
				// with launches still in flight. No assertions — the
				// daemon's convergence check below is the assertion.
				abandonLaunch(c)
				return
			}
			defer c.Close()
			ki := w % len(kernels)
			if err := runParboilViaService(c, kernels[ki], natives[ki]); err != nil {
				errs[w] = err
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", w, err)
		}
	}
	if t.Failed() {
		return
	}
	if final := d.stop(t); final != "FINAL mem=0 active=0" {
		t.Fatalf("daemon final state after churn %q", final)
	}
}

// abandonLaunch starts a long kernel and closes the connection without
// waiting for anything. Every error is ignored — the client is
// simulating a crash.
func abandonLaunch(c *Client) {
	defer c.Close()
	prog, err := c.CreateProgram(svcChurnSrc)
	if err != nil {
		return
	}
	k, err := prog.CreateKernel("churn")
	if err != nil {
		return
	}
	const n = 256 * 32
	buf, err := c.CreateBuffer(n * 4)
	if err != nil {
		return
	}
	if err := k.SetArgBuffer(0, buf); err != nil {
		return
	}
	if err := k.SetArgInt32(1, n); err != nil {
		return
	}
	c.EnqueueKernelAsync(k, opencl.ND1(n, 32))
}

// TestServiceDisconnectMidLaunch catches a kernel actually running on
// the device when its client drops: the daemon must cancel the launch
// at a slice boundary, release the tenant's buffers, and leave the
// runtime completely clean.
func TestServiceDisconnectMidLaunch(t *testing.T) {
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	rt.SetSliceRounds(1)
	srv, sock := startService(t, rt, Options{})

	c, err := Dial(sock, "dropper", "")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := c.CreateProgram(svcChurnSrc)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("churn")
	if err != nil {
		t.Fatal(err)
	}
	const n = 512 * 32
	buf, err := c.CreateBuffer(n * 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgInt32(1, n); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnqueueKernelAsync(k, opencl.ND1(n, 32)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "kernel to launch", func() bool { return rt.Stats().KernelsLaunched >= 1 })
	c.Close()
	waitFor(t, "connection teardown", func() bool { return srv.NumConns() == 0 })
	waitFor(t, "launch cancellation", func() bool { return rt.ActiveExecutions() == 0 })
	waitFor(t, "buffer reclamation", func() bool { return rt.Memory().Used() == 0 })
}

// TestServiceSlowClientEviction covers both deadline defenses: a
// connection that never completes the handshake, and an admitted
// client that floods requests while refusing to read its replies.
func TestServiceSlowClientEviction(t *testing.T) {
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	reg := telemetry.NewRegistry()
	srv, sock := startService(t, rt, Options{
		HandshakeTimeout: 50 * time.Millisecond,
		WriteTimeout:     200 * time.Millisecond,
		Metrics:          reg,
	})

	// A mute connection must be evicted at the handshake deadline.
	nc, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	waitFor(t, "handshake eviction", func() bool { return srv.NumConns() == 0 })
	if _, err := nc.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept the mute connection open")
	}
	if got := reg.Counter("service_evictions_total", telemetry.L("tenant", ""),
		telemetry.L("reason", "handshake-timeout")).Value(); got != 1 {
		t.Errorf("handshake-timeout evictions = %d, want 1", got)
	}

	// A client that handshakes, then floods enqueues without ever
	// reading a reply: once the socket buffers fill, the daemon's write
	// deadline expires and the connection is evicted instead of wedging
	// the read loop forever.
	fl, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	hello := wire.Hello{Version: wire.Version, Tenant: "flooder"}
	if err := wire.WriteFrame(fl, wire.MsgHello, 0, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	if f, err := wire.ReadFrame(fl); err != nil || f.Type != wire.MsgWelcome {
		t.Fatalf("flooder handshake: %v %v", f, err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Every frame provokes an error reply the client never reads.
		m := wire.EnqueueCopy{Dir: wire.CopyWrite, Buffer: 999, N: 1}
		for req := uint64(1); ; req++ {
			if err := wire.WriteFrame(fl, wire.MsgEnqueueCopy, req, m.Encode()); err != nil {
				return
			}
		}
	}()
	waitFor(t, "flooder eviction", func() bool { return srv.NumConns() == 0 })
	fl.Close()
	<-done
	if got := reg.Counter("service_evictions_total", telemetry.L("tenant", "flooder"),
		telemetry.L("reason", "write-timeout")).Value(); got < 1 {
		t.Errorf("write-timeout evictions = %d, want >= 1", got)
	}
}

// TestServiceBadHandshake exercises every admission refusal: wrong
// token, unknown tenant, protocol version skew, and a first frame that
// is not a hello at all. Each must be answered with a typed code that
// the client surfaces as the matching sentinel.
func TestServiceBadHandshake(t *testing.T) {
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	srv, sock := startService(t, rt, Options{
		Auth: map[string]string{"alice": "sesame"},
	})

	if _, err := Dial(sock, "alice", "wrong"); !errors.Is(err, wire.ErrUnknownTenant) {
		t.Errorf("wrong token: err = %v, want ErrUnknownTenant", err)
	}
	if _, err := Dial(sock, "mallory", "sesame"); !errors.Is(err, wire.ErrUnknownTenant) {
		t.Errorf("unknown tenant: err = %v, want ErrUnknownTenant", err)
	}
	c, err := Dial(sock, "alice", "sesame")
	if err != nil {
		t.Fatalf("good credentials rejected: %v", err)
	}
	c.Close()

	// Version skew, over a raw connection.
	nc, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	hello := wire.Hello{Version: wire.Version + 1, Tenant: "alice", Token: "sesame"}
	if err := wire.WriteFrame(nc, wire.MsgHello, 0, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	var w wire.Welcome
	if f.Type != wire.MsgWelcome || w.Decode(f.Body) != nil || w.Code != wire.CodeBadHandshake {
		t.Errorf("version skew answered with %v / %+v, want CodeBadHandshake", f.Type, w)
	}
	nc.Close()

	// A first frame that is not a hello.
	nc2, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(nc2, wire.MsgEnqueueKernel, 1, nil); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(nc2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.MsgWelcome || w.Decode(f.Body) != nil || w.Code != wire.CodeBadHandshake {
		t.Errorf("non-hello first frame answered with %v / %+v, want CodeBadHandshake", f.Type, w)
	}
	nc2.Close()
	waitFor(t, "rejected connections to drain", func() bool { return srv.NumConns() == 0 })
}

// TestServiceBackpressure fills the per-connection in-flight window
// deterministically — a write transfer gated on a client-side user
// event holds its slot open — and checks that excess enqueues fail
// with the backpressure sentinel while the admitted ones complete once
// the gate opens.
func TestServiceBackpressure(t *testing.T) {
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	_, sock := startService(t, rt, Options{MaxInflight: 4})

	c, err := Dial(sock, "pushy", "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	prog, err := c.CreateProgram(svcIncSrc)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("inc")
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	gateBuf, err := c.CreateBuffer(n * 4)
	if err != nil {
		t.Fatal(err)
	}
	const launches = 10
	bufs := make([]*RemoteBuffer, launches)
	for i := range bufs {
		if bufs[i], err = c.CreateBuffer(n * 4); err != nil {
			t.Fatal(err)
		}
	}

	// The gated write occupies slot 1 of 4 until the gate completes.
	gate := opencl.NewUserEvent()
	wev, err := gateBuf.WriteAsync(0, make([]byte, n*4), gate)
	if err != nil {
		t.Fatal(err)
	}
	evs := make([]*opencl.Event, launches)
	for i := range evs {
		if err := k.SetArgBuffer(0, bufs[i]); err != nil {
			t.Fatal(err)
		}
		if err := k.SetArgInt32(1, n); err != nil {
			t.Fatal(err)
		}
		if evs[i], err = c.EnqueueKernelAsync(k, opencl.ND1(n, 32), wev); err != nil {
			t.Fatal(err)
		}
	}
	// The three enqueues that fit the window are parked behind the
	// gate; everything after must already be rejected.
	rejected := 0
	for i := 3; i < launches; i++ {
		if err := evs[i].Wait(); !errors.Is(err, wire.ErrBackpressure) {
			t.Errorf("launch %d: err = %v, want ErrBackpressure", i, err)
		} else {
			rejected++
		}
	}
	if rejected != launches-3 {
		t.Fatalf("rejected %d launches, want %d", rejected, launches-3)
	}
	gate.Complete()
	if err := wev.Wait(); err != nil {
		t.Fatalf("gated write: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := evs[i].Wait(); err != nil {
			t.Errorf("admitted launch %d failed: %v", i, err)
		}
	}
}

// TestServiceRateLimit puts one tenant behind a near-zero token
// bucket: the first enqueue spends the burst, the second must be
// refused with the rate-limit sentinel.
func TestServiceRateLimit(t *testing.T) {
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	_, sock := startService(t, rt, Options{RatePerSec: 0.001, Burst: 1})

	c, err := Dial(sock, "throttled", "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	prog, err := c.CreateProgram(svcIncSrc)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("inc")
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	buf, err := c.CreateBuffer(n * 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgInt32(1, n); err != nil {
		t.Fatal(err)
	}
	ev1, err := c.EnqueueKernelAsync(k, opencl.ND1(n, 32))
	if err != nil {
		t.Fatal(err)
	}
	if err := ev1.Wait(); err != nil {
		t.Fatalf("first launch (inside burst): %v", err)
	}
	ev2, err := c.EnqueueKernelAsync(k, opencl.ND1(n, 32))
	if err != nil {
		t.Fatal(err)
	}
	if err := ev2.Wait(); !errors.Is(err, wire.ErrRateLimited) {
		t.Fatalf("second launch: err = %v, want ErrRateLimited", err)
	}
}

// TestServiceAdmissionRoundTrip reproduces the runtime's bounded-
// admission rejection through the wire: with one resident slot and a
// one-deep queue, the third concurrent launch must fail client-side
// with errors.Is(err, accelos.ErrAdmissionRejected) — the typed code
// surviving the process boundary.
func TestServiceAdmissionRoundTrip(t *testing.T) {
	rt := accelos.NewBoundedClusterRuntime(opencl.GetPlatforms()[:1], cluster.LeastLoaded(), 1)
	rt.Pool().SetMaxQueued(1)
	rt.SetSliceRounds(1)
	_, sock := startService(t, rt, Options{})

	c, err := Dial(sock, "greedy", "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	progL, err := c.CreateProgram(svcHoldSrc)
	if err != nil {
		t.Fatal(err)
	}
	kL, err := progL.CreateKernel("hold")
	if err != nil {
		t.Fatal(err)
	}
	progS, err := c.CreateProgram(svcPeerSrc)
	if err != nil {
		t.Fatal(err)
	}
	kS, err := progS.CreateKernel("peer")
	if err != nil {
		t.Fatal(err)
	}
	const longN, shortN = 256 * 32, 32 * 32
	bufL, err := c.CreateBuffer(longN * 4)
	if err != nil {
		t.Fatal(err)
	}
	bufS, err := c.CreateBuffer(shortN * 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := kL.SetArgBuffer(0, bufL); err != nil {
		t.Fatal(err)
	}
	if err := kL.SetArgInt32(1, longN); err != nil {
		t.Fatal(err)
	}
	if err := kS.SetArgBuffer(0, bufS); err != nil {
		t.Fatal(err)
	}
	if err := kS.SetArgInt32(1, shortN); err != nil {
		t.Fatal(err)
	}

	// The hold kernel occupies the device for tens of milliseconds, but
	// a fast machine could still drain it before the third enqueue
	// lands; re-arm the resident+queued state and try again rather than
	// betting the farm on one timing window.
	rejected := false
	for attempt := 0; attempt < 5 && !rejected; attempt++ {
		base := rt.Stats()
		evL, err := c.EnqueueKernelAsync(kL, opencl.ND1(longN, 32))
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, "long kernel to hold the device", func() bool {
			return rt.Stats().KernelsLaunched > base.KernelsLaunched
		})
		evQ, err := c.EnqueueKernelAsync(kS, opencl.ND1(shortN, 32))
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, "second kernel to queue", func() bool {
			return rt.Stats().QueuedAdmissions > base.QueuedAdmissions
		})
		evR, err := c.EnqueueKernelAsync(kS, opencl.ND1(shortN, 32))
		if err != nil {
			t.Fatal(err)
		}
		werr := evR.Wait()
		switch {
		case errors.Is(werr, accelos.ErrAdmissionRejected):
			rejected = true
		case werr == nil:
			t.Logf("attempt %d: device drained before the third enqueue, retrying", attempt)
		default:
			t.Fatalf("third launch: err = %v, want ErrAdmissionRejected across the wire", werr)
		}
		if err := evL.Wait(); err != nil {
			t.Fatal(err)
		}
		if err := evQ.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if !rejected {
		t.Fatal("no enqueue was rejected across 5 resident+queued windows")
	}
}

// runIncChain runs one complete chain — upload, blocking kernel,
// read-back, release — and verifies the bytes. It is the unit of
// replay for the restart test: every input a chain needs lives
// host-side, so it can be rebuilt from scratch against a fresh daemon
// rather than resumed (re-enqueueing against a restarted daemon is not
// idempotent; see Retryable).
func runIncChain(c *Client) error {
	prog, err := c.CreateProgram(svcIncSrc)
	if err != nil {
		return err
	}
	k, err := prog.CreateKernel("inc")
	if err != nil {
		return err
	}
	const n = 512
	buf, err := c.CreateBuffer(n * 4)
	if err != nil {
		return err
	}
	defer buf.Release()
	if err := buf.Write(0, make([]byte, n*4)); err != nil {
		return err
	}
	if err := k.SetArgBuffer(0, buf); err != nil {
		return err
	}
	if err := k.SetArgInt32(1, n); err != nil {
		return err
	}
	if err := c.EnqueueKernel(k, opencl.ND1(n, 64)); err != nil {
		return err
	}
	out := make([]byte, n*4)
	if err := buf.Read(0, out); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if v := binary.LittleEndian.Uint32(out[i*4:]); v != 1 {
			return fmt.Errorf("out[%d] = %d, want 1", i, v)
		}
	}
	return nil
}

// TestServiceDaemonRestart is the crash-recovery satellite: a daemon is
// SIGTERM'd between two chains and restarted on the same socket. The
// orphaned client must fail with typed errors (never hang), and a
// redial with Retry must ride out the restart window and run the second
// chain byte-identically against the replacement daemon.
func TestServiceDaemonRestart(t *testing.T) {
	dir, err := os.MkdirTemp("", "svc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	sock := filepath.Join(dir, "d.sock")
	reg := telemetry.NewRegistry()
	opts := DialOptions{
		Retry:      200,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		Seed:       7,
		Metrics:    reg,
	}

	d1 := startDaemonAt(t, sock)
	c1, err := DialWithOptions(sock, "phoenix", "", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := runIncChain(c1); err != nil {
		t.Fatalf("first chain: %v", err)
	}

	// Kill the daemon out from under the client, the way a process
	// manager would.
	if final := d1.sigterm(t); final != "FINAL mem=0 active=0" {
		t.Fatalf("daemon final state %q", final)
	}

	// The orphaned client must answer with the typed connection-death
	// error — classified retryable so callers know a redial can help —
	// and must not hang.
	if _, err := c1.CreateBuffer(64); err == nil {
		t.Fatal("call against dead daemon succeeded")
	} else {
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("orphaned call: err = %v, want ErrClientClosed", err)
		}
		if !Retryable(err) {
			t.Fatalf("orphaned call error %v not classified retryable", err)
		}
	}
	c1.Close()

	// Redial while the daemon is still down: the retry loop must absorb
	// the dead-socket window and connect once the replacement is up.
	type dialRes struct {
		c   *Client
		err error
	}
	dialed := make(chan dialRes, 1)
	go func() {
		c, err := DialWithOptions(sock, "phoenix", "", opts)
		dialed <- dialRes{c, err}
	}()
	time.Sleep(30 * time.Millisecond) // guarantee a few failed attempts
	d2 := startDaemonAt(t, sock)
	res := <-dialed
	if res.err != nil {
		t.Fatalf("redial across restart: %v", res.err)
	}
	if err := runIncChain(res.c); err != nil {
		t.Fatalf("second chain after restart: %v", err)
	}
	res.c.Close()
	if got := reg.Counter("client_retries_total", telemetry.L("tenant", "phoenix")).Value(); got == 0 {
		t.Error("client_retries_total = 0, want > 0 across the restart window")
	}
	if final := d2.stop(t); final != "FINAL mem=0 active=0" {
		t.Fatalf("replacement daemon final state %q", final)
	}
}
