package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// LiveScorecard accumulates the §7.4 metrics from real execution spans
// instead of fluid-sim output. For every completed kernel the runtime
// reports the tenant, the shared wall time (the event's enqueue-to-
// complete span, i.e. what the tenant actually experienced under
// co-running load) and an estimate of the alone time (the kernel's
// accumulated slice busy time — the machine-occupancy portion of the
// wall time, which is what the kernel would have cost with the device to
// itself). IS_i = T(shared)/T(alone) then feeds the standard
// unfairness/STP/ANTT formulas.
//
// All methods are safe for concurrent use and on a nil receiver (a nil
// scorecard records nothing).
type LiveScorecard struct {
	mu      sync.Mutex
	tenants map[string]*tenantAcc
}

type tenantAcc struct {
	kernels int
	shared  time.Duration
	alone   time.Duration
}

// NewLiveScorecard returns an empty scorecard.
func NewLiveScorecard() *LiveScorecard {
	return &LiveScorecard{tenants: make(map[string]*tenantAcc)}
}

// AddKernel records one completed kernel execution for the tenant.
// Non-positive alone times clamp to 1ns so a degenerate sample cannot
// produce an infinite slowdown.
func (s *LiveScorecard) AddKernel(tenant string, shared, alone time.Duration) {
	if s == nil {
		return
	}
	if alone <= 0 {
		alone = 1
	}
	if shared < alone {
		// Busy time is a lower bound on wall time; clock skew between the
		// two measurements must not yield IS < 1.
		shared = alone
	}
	s.mu.Lock()
	acc := s.tenants[tenant]
	if acc == nil {
		acc = &tenantAcc{}
		s.tenants[tenant] = acc
	}
	acc.kernels++
	acc.shared += shared
	acc.alone += alone
	s.mu.Unlock()
}

// TenantScore is one tenant's accumulated measurement.
type TenantScore struct {
	Tenant   string
	Kernels  int
	Shared   time.Duration // Σ enqueue-to-complete wall time
	Alone    time.Duration // Σ estimated alone (slice busy) time
	Slowdown float64       // IS_i = Shared/Alone
}

// Scorecard is a computed §7.4 snapshot.
type Scorecard struct {
	Tenants    []TenantScore // sorted by tenant name
	Unfairness float64
	STP        float64
	ANTT       float64
	WorstANTT  float64
}

// Compute derives the §7.4 metrics from the accumulated samples.
func (s *LiveScorecard) Compute() Scorecard {
	var sc Scorecard
	if s == nil {
		sc.Unfairness = 1
		return sc
	}
	s.mu.Lock()
	for name, acc := range s.tenants {
		sc.Tenants = append(sc.Tenants, TenantScore{
			Tenant:   name,
			Kernels:  acc.kernels,
			Shared:   acc.shared,
			Alone:    acc.alone,
			Slowdown: IndividualSlowdown(int64(acc.shared), int64(acc.alone)),
		})
	}
	s.mu.Unlock()
	sort.Slice(sc.Tenants, func(i, j int) bool { return sc.Tenants[i].Tenant < sc.Tenants[j].Tenant })
	iss := make([]float64, len(sc.Tenants))
	for i, t := range sc.Tenants {
		iss[i] = t.Slowdown
	}
	sc.Unfairness = Unfairness(iss)
	sc.STP = STP(iss)
	sc.ANTT = ANTT(iss)
	sc.WorstANTT = WorstANTT(iss)
	return sc
}

// String renders the scorecard as the paper's §7.4 table shape: one row
// per tenant plus the aggregate unfairness/STP/ANTT line.
func (sc Scorecard) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %12s %8s\n", "tenant", "kernels", "shared", "alone", "IS")
	for _, t := range sc.Tenants {
		fmt.Fprintf(&b, "%-12s %8d %12s %12s %8.2f\n",
			t.Tenant, t.Kernels, t.Shared.Round(time.Microsecond), t.Alone.Round(time.Microsecond), t.Slowdown)
	}
	fmt.Fprintf(&b, "unfairness %.2f   STP %.2f   ANTT %.2f   worst ANTT %.2f",
		sc.Unfairness, sc.STP, sc.ANTT, sc.WorstANTT)
	return b.String()
}
