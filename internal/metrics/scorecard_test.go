package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLiveScorecardCompute(t *testing.T) {
	s := NewLiveScorecard()
	// Tenant a: 2 kernels, each 2x slowdown. Tenant b: 1 kernel, 4x.
	s.AddKernel("a", 20*time.Millisecond, 10*time.Millisecond)
	s.AddKernel("a", 40*time.Millisecond, 20*time.Millisecond)
	s.AddKernel("b", 40*time.Millisecond, 10*time.Millisecond)

	sc := s.Compute()
	if len(sc.Tenants) != 2 {
		t.Fatalf("got %d tenants, want 2", len(sc.Tenants))
	}
	if sc.Tenants[0].Tenant != "a" || sc.Tenants[1].Tenant != "b" {
		t.Fatalf("tenants not sorted: %+v", sc.Tenants)
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !approx(sc.Tenants[0].Slowdown, 2) || !approx(sc.Tenants[1].Slowdown, 4) {
		t.Fatalf("slowdowns = %g, %g; want 2, 4", sc.Tenants[0].Slowdown, sc.Tenants[1].Slowdown)
	}
	if !approx(sc.Unfairness, 2) {
		t.Errorf("unfairness = %g, want 2", sc.Unfairness)
	}
	if !approx(sc.STP, 0.5+0.25) {
		t.Errorf("STP = %g, want 0.75", sc.STP)
	}
	if !approx(sc.ANTT, 3) {
		t.Errorf("ANTT = %g, want 3", sc.ANTT)
	}
	if !approx(sc.WorstANTT, 4) {
		t.Errorf("worst ANTT = %g, want 4", sc.WorstANTT)
	}
	out := sc.String()
	for _, want := range []string{"tenant", "unfairness 2.00", "STP 0.75", "ANTT 3.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestLiveScorecardClamps(t *testing.T) {
	s := NewLiveScorecard()
	// Degenerate samples: zero alone time, and busy time exceeding wall
	// time (clock skew) must clamp to IS >= 1, never Inf or < 1.
	s.AddKernel("z", 5*time.Millisecond, 0)
	s.AddKernel("w", 1*time.Millisecond, 2*time.Millisecond)
	sc := s.Compute()
	for _, ts := range sc.Tenants {
		if math.IsInf(ts.Slowdown, 0) || ts.Slowdown < 1 {
			t.Errorf("tenant %s slowdown %g out of range", ts.Tenant, ts.Slowdown)
		}
	}
}

func TestLiveScorecardConcurrentAndNil(t *testing.T) {
	s := NewLiveScorecard()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.AddKernel("t", 2*time.Millisecond, time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	sc := s.Compute()
	if sc.Tenants[0].Kernels != 1600 {
		t.Fatalf("kernels = %d, want 1600", sc.Tenants[0].Kernels)
	}

	var nils *LiveScorecard
	nils.AddKernel("x", 1, 1)
	if got := nils.Compute(); len(got.Tenants) != 0 {
		t.Fatal("nil scorecard recorded samples")
	}
}
