// Package metrics implements the evaluation metrics of the paper (§7.4):
// individual slowdown, system unfairness (Ebrahimi et al.), fairness
// improvement, kernel execution overlap, throughput speedup, STP
// (Eyerman & Eeckhout) and ANTT.
package metrics

import (
	"math"
	"sort"
)

// IndividualSlowdown is IS_i = T(shared)_i / T(alone)_i.
func IndividualSlowdown(shared, alone int64) float64 {
	if alone <= 0 {
		return math.Inf(1)
	}
	return float64(shared) / float64(alone)
}

// Unfairness is U = max(IS_0..IS_{K-1}) / min(IS_0..IS_{K-1}); 1.0 is
// perfectly fair.
func Unfairness(slowdowns []float64) float64 {
	if len(slowdowns) == 0 {
		return 1
	}
	mn, mx := slowdowns[0], slowdowns[0]
	for _, s := range slowdowns[1:] {
		if s < mn {
			mn = s
		}
		if s > mx {
			mx = s
		}
	}
	if mn <= 0 {
		return math.Inf(1)
	}
	return mx / mn
}

// FairnessImprovement is U_baseline / U_scheme (higher is better).
func FairnessImprovement(baseline, scheme float64) float64 {
	if scheme <= 0 {
		return math.Inf(1)
	}
	return baseline / scheme
}

// ThroughputSpeedup is T_baseline / T_scheme for the whole workload.
func ThroughputSpeedup(baseline, scheme int64) float64 {
	if scheme <= 0 {
		return math.Inf(1)
	}
	return float64(baseline) / float64(scheme)
}

// STP is system throughput Σ_i 1/IS_i — the accumulated normalized
// progress of the co-running kernels (K would be ideal).
func STP(slowdowns []float64) float64 {
	var s float64
	for _, is := range slowdowns {
		if is > 0 {
			s += 1 / is
		}
	}
	return s
}

// ANTT is the average normalized turnaround time (1/K)·Σ_i IS_i; lower
// is better, 1.0 is ideal.
func ANTT(slowdowns []float64) float64 {
	if len(slowdowns) == 0 {
		return 0
	}
	var s float64
	for _, is := range slowdowns {
		s += is
	}
	return s / float64(len(slowdowns))
}

// WorstANTT returns the maximum IS — the paper's "W. ANTT" column.
func WorstANTT(slowdowns []float64) float64 {
	var mx float64
	for _, is := range slowdowns {
		if is > mx {
			mx = is
		}
	}
	return mx
}

// Mean is the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean is the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation; xs need not be sorted (a copy is sorted internally).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// FractionBelow returns the fraction of values strictly below the
// threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
