package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestIndividualSlowdown(t *testing.T) {
	if got := IndividualSlowdown(200, 100); got != 2 {
		t.Errorf("IS = %v, want 2", got)
	}
	if got := IndividualSlowdown(100, 0); !math.IsInf(got, 1) {
		t.Errorf("IS with zero isolated time = %v, want +Inf", got)
	}
}

func TestUnfairness(t *testing.T) {
	if got := Unfairness([]float64{2, 2, 2}); got != 1 {
		t.Errorf("equal slowdowns U = %v, want 1", got)
	}
	if got := Unfairness([]float64{1, 4}); got != 4 {
		t.Errorf("U = %v, want 4", got)
	}
	if got := Unfairness(nil); got != 1 {
		t.Errorf("empty U = %v, want 1", got)
	}
	if got := Unfairness([]float64{0, 1}); !math.IsInf(got, 1) {
		t.Errorf("U with zero slowdown = %v, want +Inf", got)
	}
}

func TestFairnessAndThroughput(t *testing.T) {
	if got := FairnessImprovement(8, 2); got != 4 {
		t.Errorf("FI = %v, want 4", got)
	}
	if got := ThroughputSpeedup(300, 200); !almost(got, 1.5) {
		t.Errorf("speedup = %v, want 1.5", got)
	}
}

func TestSTPAndANTT(t *testing.T) {
	iss := []float64{1, 2, 4}
	if got := STP(iss); !almost(got, 1+0.5+0.25) {
		t.Errorf("STP = %v, want 1.75", got)
	}
	if got := ANTT(iss); !almost(got, 7.0/3) {
		t.Errorf("ANTT = %v, want 7/3", got)
	}
	if got := WorstANTT(iss); got != 4 {
		t.Errorf("WorstANTT = %v, want 4", got)
	}
	if ANTT(nil) != 0 || STP(nil) != 0 {
		t.Error("empty STP/ANTT should be 0")
	}
}

func TestMeansAndPercentiles(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Mean(xs); !almost(got, 2.5) {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); !almost(got, 2) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with a zero should be 0")
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
	if got := Percentile(xs, 50); !almost(got, 2.5) {
		t.Errorf("p50 = %v, want 2.5", got)
	}
	if got := FractionBelow(xs, 2.5); !almost(got, 0.5) {
		t.Errorf("FractionBelow = %v, want 0.5", got)
	}
}

// Properties.

func TestUnfairnessProperties(t *testing.T) {
	// U >= 1 and scale-invariant.
	f := func(raw []uint16, scale uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var iss, scaled []float64
		s := 1 + float64(scale%100)
		for _, r := range raw {
			v := 1 + float64(r%1000)/10
			iss = append(iss, v)
			scaled = append(scaled, v*s)
		}
		u := Unfairness(iss)
		return u >= 1 && almost(u, Unfairness(scaled))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSTPBounds(t *testing.T) {
	// With every IS >= 1, STP is at most the kernel count and positive.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var iss []float64
		for _, r := range raw {
			iss = append(iss, 1+float64(r%1000)/10)
		}
		s := STP(iss)
		return s > 0 && s <= float64(len(iss))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestANTTAtLeastOne(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var iss []float64
		for _, r := range raw {
			iss = append(iss, 1+float64(r%1000)/10)
		}
		a := ANTT(iss)
		return a >= 1 && a <= WorstANTT(iss)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r))
		}
		p, q := float64(a%101), float64(b%101)
		if p > q {
			p, q = q, p
		}
		return Percentile(xs, p) <= Percentile(xs, q)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var xs []float64
		mn, mx := math.Inf(1), 0.0
		for _, r := range raw {
			v := 0.5 + float64(r%1000)/100
			xs = append(xs, v)
			mn = math.Min(mn, v)
			mx = math.Max(mx, v)
		}
		g := GeoMean(xs)
		return g >= mn-1e-9 && g <= mx+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
