// Command acceld is the out-of-process accelOS daemon: one runtime —
// single-device or a cluster pool — served behind a unix socket
// speaking the internal/wire protocol. Client processes attach with
// service.Dial and get the full ProxyCL surface; buffer bytes are
// shared through mmap'd segments, so only control frames cross the
// socket.
//
// Usage:
//
//	acceld -socket /tmp/acceld.sock
//	acceld -devices 4 -policy least-loaded -max-resident 2
//	acceld -auth "alice=sesame,bob=hunter2" -rate 500 -burst 64
//
// SIGINT/SIGTERM drains every connection (releasing tenant buffers and
// cancelling in-flight launches), dumps the service metrics, and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/accelos"
	"repro/internal/cluster"
	"repro/internal/opencl"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	socket := flag.String("socket", "/tmp/acceld.sock", "unix socket path to serve on")
	devices := flag.Int("devices", 1, "device pool size (alternating the two paper platforms)")
	policy := flag.String("policy", "least-loaded", "placement policy for multi-device pools")
	maxResident := flag.Int("max-resident", 0, "bounded admission: max resident executions per device (0 = unbounded)")
	maxInflight := flag.Int("max-inflight", 0, "per-connection in-flight enqueue window (0 = default 1024)")
	rate := flag.Float64("rate", 0, "per-tenant enqueue rate limit in requests/sec (0 = unlimited)")
	burst := flag.Int("burst", 0, "rate-limit burst depth (0 = max(1, rate))")
	auth := flag.String("auth", "", "comma-separated tenant=token pairs; empty admits any tenant")
	shmDir := flag.String("shm-dir", "", "directory for shared-memory buffer segments (default: system temp)")
	sliceRounds := flag.Int64("slice-rounds", 0, "scheduler slice length in rounds (0 = runtime default)")
	dumpMetrics := flag.Bool("metrics", true, "dump service metrics on shutdown")
	flag.Parse()

	rt, err := buildRuntime(*devices, *policy, *maxResident)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *sliceRounds > 0 {
		rt.SetSliceRounds(*sliceRounds)
	}
	reg := telemetry.NewRegistry()
	rt.SetTelemetry(nil, reg, nil)

	opts := service.Options{
		MaxInflight: *maxInflight,
		RatePerSec:  *rate,
		Burst:       *burst,
		ShmDir:      *shmDir,
		Metrics:     reg,
	}
	if *auth != "" {
		opts.Auth = make(map[string]string)
		for _, pair := range strings.Split(*auth, ",") {
			tenant, token, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || tenant == "" {
				fmt.Fprintf(os.Stderr, "acceld: bad -auth entry %q (want tenant=token)\n", pair)
				os.Exit(2)
			}
			opts.Auth[tenant] = token
		}
	}

	srv := service.NewServer(rt, opts)
	if err := srv.Start(*socket); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("acceld: serving %d device(s) on %s\n", *devices, *socket)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("acceld: %v — draining %d connection(s)\n", s, srv.NumConns())
	srv.Close()
	st := rt.Stats()
	rt.Shutdown()
	os.Remove(*socket)
	fmt.Printf("acceld: served %d launches (%d queued, %d rejected)\n",
		st.KernelsLaunched, st.QueuedAdmissions, st.Rejected)
	if *dumpMetrics {
		reg.WriteText(os.Stdout)
	}
}

// buildRuntime assembles the hosted runtime: a single platform, or a
// pool cycling the two paper machines under a placement policy, with
// optional bounded admission.
func buildRuntime(devices int, policy string, maxResident int) (*accelos.Runtime, error) {
	if devices <= 1 {
		return accelos.NewRuntime(opencl.GetPlatforms()[0]), nil
	}
	var plats []*opencl.Platform
	for i := 0; i < devices; i++ {
		plats = append(plats, opencl.GetPlatforms()[i%2])
	}
	pol, err := cluster.PolicyByName(policy)
	if err != nil {
		return nil, err
	}
	if maxResident > 0 {
		return accelos.NewBoundedClusterRuntime(plats, pol, maxResident), nil
	}
	return accelos.NewClusterRuntime(plats, pol), nil
}
