// Command clcc compiles an OpenCL C kernel file through the CLC front
// end and shows the compilation pipeline the accelOS JIT applies: the
// original IR, the transformed IR (computation function + scheduling
// kernel, linked against the runtime library), and the per-kernel
// metadata that feeds the host runtime (instruction count, adaptive
// chunk, register estimate, local memory).
//
// Usage:
//
//	clcc [-stage=ir|transformed|meta|sched] file.cl
//	clcc -demo                # use the paper's Fig. 8 example kernel
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/accelpass"
	"repro/internal/clc"
	"repro/internal/ir"
	"repro/internal/passes"
)

const demoSrc = `/* The paper's running example (Fig. 8a). */
#define NConstant 4
kernel void mop(global const float* ina, global const float* inb, global float* out)
{
    size_t gid = get_global_id(0);
    size_t grid = get_group_id(0);
    if (grid < NConstant)
        out[gid] = ina[gid] + inb[gid];
    else
        out[gid] = ina[gid] - inb[gid];
}
`

func main() {
	stage := flag.String("stage", "all", "what to print: ir, transformed, meta, or all")
	demo := flag.Bool("demo", false, "compile the paper's Fig. 8 example instead of a file")
	flag.Parse()

	var src, name string
	if *demo {
		src, name = demoSrc, "fig8"
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: clcc [-stage=...] file.cl  (or clcc -demo)")
			os.Exit(2)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src, name = string(data), flag.Arg(0)
	}

	mod, err := clc.Compile(src, name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *stage == "ir" || *stage == "all" {
		fmt.Println("==== original IR ====")
		fmt.Print(mod.String())
	}

	tm := ir.CloneModule(mod)
	res, err := accelpass.Transform(tm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "transform:", err)
		os.Exit(1)
	}
	if *stage == "transformed" || *stage == "all" {
		fmt.Println("\n==== transformed IR (computation functions + scheduling kernels + runtime library) ====")
		fmt.Print(res.Module.String())
	}
	if *stage == "meta" || *stage == "all" {
		fmt.Println("\n==== JIT metadata ====")
		for _, f := range mod.Kernels() {
			info := res.Kernels[f.Name]
			fmt.Printf("kernel %-24s instrs=%-4d chunk=%d (adaptive: %d) regs/thread=%-3d local=%dB (orig %dB) hoisted=%d\n",
				f.Name, info.InstrCount, info.Chunk, passes.AdaptiveChunk(info.InstrCount),
				info.Regs, info.LocalBytes, info.OrigLocalBytes, len(info.Hoisted))
		}
	}
}
