// Command clcc compiles an OpenCL C kernel file through the CLC front
// end and shows the compilation pipeline the accelOS JIT applies: the
// original IR, the transformed IR (computation function + scheduling
// kernel, linked against the runtime library), and the per-kernel
// metadata that feeds the host runtime (instruction count, adaptive
// chunk, register estimate, local memory).
//
// Usage:
//
//	clcc [-stage=ir|transformed|meta|sched] file.cl
//	clcc -demo                # use the paper's Fig. 8 example kernel
//	clcc -profile file.cl     # run each kernel on synthesized arguments
//	                          # and dump its VM execution profile
//	clcc -emit-tiers file.cl  # run the tiered pipeline (tier-0 compile,
//	                          # profile, tier-1 recompile) and print each
//	                          # kernel's profile-guided compile decisions
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/accelpass"
	"repro/internal/clc"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/passes"
)

const demoSrc = `/* The paper's running example (Fig. 8a). */
#define NConstant 4
kernel void mop(global const float* ina, global const float* inb, global float* out)
{
    size_t gid = get_global_id(0);
    size_t grid = get_group_id(0);
    if (grid < NConstant)
        out[gid] = ina[gid] + inb[gid];
    else
        out[gid] = ina[gid] - inb[gid];
}
`

func main() {
	stage := flag.String("stage", "all", "what to print: ir, transformed, meta, or all")
	demo := flag.Bool("demo", false, "compile the paper's Fig. 8 example instead of a file")
	profile := flag.Bool("profile", false, "execute each kernel on synthesized arguments (64x64 NDRange) and dump its VM execution profile")
	emitTiersFlag := flag.Bool("emit-tiers", false, "run the tiered pipeline on synthesized arguments and print per-kernel tier decisions: chosen superinstructions with profile weights and the hot block order")
	flag.Parse()

	var src, name string
	if *demo {
		src, name = demoSrc, "fig8"
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: clcc [-stage=...] file.cl  (or clcc -demo)")
			os.Exit(2)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src, name = string(data), flag.Arg(0)
	}

	mod, err := clc.Compile(src, name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *stage == "ir" || *stage == "all" {
		fmt.Println("==== original IR ====")
		fmt.Print(mod.String())
	}

	tm := ir.CloneModule(mod)
	res, err := accelpass.Transform(tm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "transform:", err)
		os.Exit(1)
	}
	if *stage == "transformed" || *stage == "all" {
		fmt.Println("\n==== transformed IR (computation functions + scheduling kernels + runtime library) ====")
		fmt.Print(res.Module.String())
	}
	if *stage == "meta" || *stage == "all" {
		fmt.Println("\n==== JIT metadata ====")
		for _, f := range mod.Kernels() {
			info := res.Kernels[f.Name]
			fmt.Printf("kernel %-24s instrs=%-4d chunk=%d (adaptive: %d) regs/thread=%-3d local=%dB (orig %dB) hoisted=%d\n",
				f.Name, info.InstrCount, info.Chunk, passes.AdaptiveChunk(info.InstrCount),
				info.Regs, info.LocalBytes, info.OrigLocalBytes, len(info.Hoisted))
		}
	}
	if *profile {
		fmt.Println("\n==== VM execution profiles (synthesized arguments, 64x64 NDRange) ====")
		if err := profileKernels(mod); err != nil {
			fmt.Fprintln(os.Stderr, "profile:", err)
			os.Exit(1)
		}
	}
	if *emitTiersFlag {
		fmt.Println("\n==== tier decisions (tier-0 compile -> synthesized profile -> tier-1 recompile) ====")
		emitTiers(mod)
	}
}

// profileKernels executes every kernel in the module once on the
// bytecode VM with synthesized arguments — global/constant pointers get
// a zeroed 1 MB buffer, local pointers a 4 KB per-group region, ints 64
// and floats 1.0 — under an unsampled profiler, then dumps the
// per-opcode/per-block profile. Kernels that fault on the synthetic
// input (e.g. divide by a zeroed buffer element) are reported, not
// fatal: the profile still covers the instructions executed up to the
// fault.
func profileKernels(mod *ir.Module) error {
	prof := interp.NewProfiler(interp.ProfileOptions{PerOpcode: true, PerBlock: true, SampleEvery: 1})
	for _, f := range mod.Kernels() {
		m := interp.NewMachine(mod)
		m.Profiler = prof
		if err := m.Launch(f.Name, synthArgs(m, f), interp.ND1(64, 64)); err != nil {
			fmt.Printf("kernel %s faulted on synthesized input: %v\n", f.Name, err)
		}
	}
	prof.Dump(os.Stdout)
	return nil
}

// synthArgs builds profileKernels' synthesized argument list for one
// kernel: zeroed 1 MB global buffers, 4 KB local regions, 64 for
// integers, 1.0 for floats.
func synthArgs(m *interp.Machine, f *ir.Function) []interp.Value {
	args := make([]interp.Value, 0, len(f.Params))
	for _, p := range f.Params {
		switch {
		case p.Ty.IsPointer() && p.Ty.Space == ir.Local:
			args = append(args, interp.LocalArgV(4096))
		case p.Ty.IsPointer():
			r := m.NewRegion(1<<20, ir.Global)
			args = append(args, interp.Value{K: ir.Pointer, P: interp.Ptr{R: r}})
		case p.Ty.IsFloat():
			args = append(args, interp.FloatV(1.0))
		case p.Ty.Kind == ir.I64:
			args = append(args, interp.LongV(64))
		default:
			args = append(args, interp.IntV(64))
		}
	}
	return args
}

// emitTiers replays the runtime's tiered execution pipeline offline:
// compile the module at tier 0 (no O1, no fusion), execute every kernel
// once on synthesized arguments under an unsampled profiler, then
// recompile at tier 1 under the resulting profile guide and print what
// the profile-guided compiler decided — the hot block emission order
// and every superinstruction candidate with its dynamic weight,
// including the ones the uniformity analysis gated off.
func emitTiers(mod *ir.Module) {
	t0 := time.Now()
	p0 := interp.CompileModuleOpts(mod, interp.Tier0CompileOpts)
	tier0 := time.Since(t0)

	prof := interp.NewProfiler(interp.ProfileOptions{PerOpcode: true, PerBlock: true, SampleEvery: 1})
	for _, f := range mod.Kernels() {
		m := interp.NewMachine(mod)
		m.Profiler = prof
		m.UseProgram(p0)
		if err := m.Launch(f.Name, synthArgs(m, f), interp.ND1(64, 64)); err != nil {
			fmt.Printf("kernel %s faulted on synthesized input: %v\n", f.Name, err)
		}
	}
	guide := interp.GuideFromSnapshots(prof.Snapshot())

	t1 := time.Now()
	p1 := interp.CompileModuleOpts(mod, interp.CompileOpts{
		Opt: true, WarpWidth: interp.DefaultWarpWidth, Profile: guide,
	})
	tier1 := time.Since(t1)

	fmt.Printf("tier 0 compile: %v (O1 pipeline and fusion skipped)\n", tier0)
	fmt.Printf("tier 1 compile: %v (profile-guided)\n", tier1)
	for _, d := range p1.Decisions() {
		fmt.Printf("\nfunction %s:\n", d.Fn)
		fmt.Printf("  block order: %s\n", strings.Join(d.BlockOrder, " -> "))
		if len(d.Super) == 0 {
			fmt.Println("  superinstructions: none eligible")
			continue
		}
		for _, s := range d.Super {
			state := "emitted"
			if s.Gated {
				state = "gated (divergent operands)"
			}
			fmt.Printf("  superinstruction %-14s block=%-12s weight=%-10d %s\n",
				s.Name, s.Block, s.Weight, state)
		}
	}
}
