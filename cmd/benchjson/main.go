// Command benchjson converts `go test -bench` text output into a JSON
// record. The CI benchmark smoke jobs pipe benchmark suites through it
// to produce the repo's performance-trajectory snapshots
// (BENCH_interp.json, BENCH_api.json); refresh them with:
//
//	go test -run xxx -bench 'InterpLaunch|SlicedLaunch|Dispatch' \
//	    -benchtime 1x -benchmem . | go run ./cmd/benchjson -out BENCH_interp.json
//	go test -run xxx -bench 'AsyncPipeline|EventOverhead' \
//	    -benchtime 3x -benchmem . | go run ./cmd/benchjson \
//	    -require AsyncPipeline,EventOverhead -out BENCH_api.json
//
// -require makes the conversion fail unless every listed name substring
// matched at least one benchmark, so a CI job cannot silently record an
// empty or mis-filtered run. -require-ratio enforces speedup floors
// between two benchmarks of the same record ('slow:fast>=min'), the
// machine-independent way CI guards the interpreter optimization
// pipeline's >=3x BenchmarkDispatch win:
//
//	go run ./cmd/benchjson \
//	    -require-ratio 'BenchmarkDispatch/vm-O0:BenchmarkDispatch/vm>=3'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is the output document.
type Record struct {
	Note       string   `json:"note,omitempty"`
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "-", "benchmark text output ('-' for stdin)")
	out := flag.String("out", "-", "JSON destination ('-' for stdout)")
	note := flag.String("note", "", "free-form note stored in the record")
	require := flag.String("require", "", "comma-separated name substrings that must each match a benchmark")
	requireRatio := flag.String("require-ratio", "",
		"comma-separated 'slow:fast>=min' specs; fails unless ns/op(slow)/ns/op(fast) >= min within this record (a machine-independent speedup guard)")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	rec, err := parse(src)
	if err != nil {
		fatal(err)
	}
	if err := checkRequired(rec, *require); err != nil {
		fatal(err)
	}
	if err := checkRatios(rec, *requireRatio); err != nil {
		fatal(err)
	}
	rec.Note = *note

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// checkRequired verifies every comma-separated substring matches at
// least one parsed benchmark name.
func checkRequired(rec *Record, require string) error {
	for _, want := range strings.Split(require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, b := range rec.Benchmarks {
			if strings.Contains(b.Name, want) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("required benchmark %q not found in input", want)
		}
	}
	return nil
}

// checkRatios enforces 'slow:fast>=min' speedup floors within the
// record: the named benchmarks are matched exactly (after the
// -GOMAXPROCS strip) and ns/op(slow)/ns/op(fast) must reach min. CI
// uses it to guard optimization-pipeline speedups without depending on
// the runner's absolute clock: both sides ran on the same machine in
// the same job.
func checkRatios(rec *Record, specs string) error {
	for _, spec := range strings.Split(specs, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		names, minStr, ok := strings.Cut(spec, ">=")
		if !ok {
			return fmt.Errorf("bad ratio spec %q: want 'slow:fast>=min'", spec)
		}
		slowName, fastName, ok := strings.Cut(names, ":")
		if !ok {
			return fmt.Errorf("bad ratio spec %q: want 'slow:fast>=min'", spec)
		}
		min, err := strconv.ParseFloat(strings.TrimSpace(minStr), 64)
		if err != nil {
			return fmt.Errorf("bad ratio bound in %q: %v", spec, err)
		}
		find := func(name string) (Result, error) {
			name = strings.TrimSpace(name)
			for _, b := range rec.Benchmarks {
				if b.Name == name {
					return b, nil
				}
			}
			return Result{}, fmt.Errorf("benchmark %q not found for ratio check", name)
		}
		slow, err := find(slowName)
		if err != nil {
			return err
		}
		fast, err := find(fastName)
		if err != nil {
			return err
		}
		if fast.NsPerOp <= 0 {
			return fmt.Errorf("benchmark %q has no ns/op", fast.Name)
		}
		ratio := slow.NsPerOp / fast.NsPerOp
		if ratio < min {
			return fmt.Errorf("ratio %s/%s = %.2f, below required %.2f",
				slow.Name, fast.Name, ratio, min)
		}
		fmt.Fprintf(os.Stderr, "benchjson: ratio %s/%s = %.2fx (>= %.2f ok)\n",
			slow.Name, fast.Name, ratio, min)
	}
	return nil
}

// parse reads the standard benchmark output format: header key: value
// lines followed by "BenchmarkName-N  <runs>  <value> <unit> ..." rows.
func parse(r io.Reader) (*Record, error) {
	rec := &Record{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rec.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rec.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", line, err)
			}
			rec.Benchmarks = append(rec.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return rec, nil
}

func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("too few fields")
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("bad run count %q", fields[1])
	}
	res := Result{Name: name, Runs: runs}
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("bad value %q", fields[i])
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	return res, nil
}
