// Command benchjson converts `go test -bench` text output into a JSON
// record. The CI benchmark smoke jobs pipe benchmark suites through it
// to produce the repo's performance-trajectory snapshots
// (BENCH_interp.json, BENCH_api.json); refresh them with:
//
//	go test -run xxx -bench 'InterpLaunch|SlicedLaunch|Dispatch' \
//	    -benchtime 1x -benchmem . | go run ./cmd/benchjson -out BENCH_interp.json
//	go test -run xxx -bench 'AsyncPipeline|EventOverhead' \
//	    -benchtime 3x -benchmem . | go run ./cmd/benchjson \
//	    -require AsyncPipeline,EventOverhead -out BENCH_api.json
//
// -require makes the conversion fail unless every listed name substring
// matched at least one benchmark, so a CI job cannot silently record an
// empty or mis-filtered run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is the output document.
type Record struct {
	Note       string   `json:"note,omitempty"`
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "-", "benchmark text output ('-' for stdin)")
	out := flag.String("out", "-", "JSON destination ('-' for stdout)")
	note := flag.String("note", "", "free-form note stored in the record")
	require := flag.String("require", "", "comma-separated name substrings that must each match a benchmark")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	rec, err := parse(src)
	if err != nil {
		fatal(err)
	}
	if err := checkRequired(rec, *require); err != nil {
		fatal(err)
	}
	rec.Note = *note

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// checkRequired verifies every comma-separated substring matches at
// least one parsed benchmark name.
func checkRequired(rec *Record, require string) error {
	for _, want := range strings.Split(require, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for _, b := range rec.Benchmarks {
			if strings.Contains(b.Name, want) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("required benchmark %q not found in input", want)
		}
	}
	return nil
}

// parse reads the standard benchmark output format: header key: value
// lines followed by "BenchmarkName-N  <runs>  <value> <unit> ..." rows.
func parse(r io.Reader) (*Record, error) {
	rec := &Record{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rec.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rec.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", line, err)
			}
			rec.Benchmarks = append(rec.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return rec, nil
}

func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("too few fields")
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("bad run count %q", fields[1])
	}
	res := Result{Name: name, Runs: runs}
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("bad value %q", fields[i])
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	return res, nil
}
