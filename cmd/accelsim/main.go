// Command accelsim regenerates the paper's tables and figures on the
// simulated platforms.
//
// Usage:
//
//	accelsim -exp all                 # every figure and table, both platforms
//	accelsim -exp fig9 -platform amd  # one experiment, one platform
//	accelsim -exp fig13 -full         # paper-scale populations (625/16384/32768)
//
// Experiments: fig2, fig9, fig10, fig11, fig12, fig13, fig14, fig15,
// table1, table2, all. Beyond the paper, `-exp cluster` simulates a
// multi-device pool behind the cluster scheduler:
//
//	accelsim -exp cluster -devices 4 -policy least-loaded
//	accelsim -exp cluster -devices 4 -policy all -tenants 4
//
// and `-exp live` drives the real interpreter-backed runtime through the
// event-based host API, comparing serial in-order submission against
// asynchronous pipelines from a single application:
//
//	accelsim -exp live -chains 8
//
// `-exp service` measures the out-of-process boundary: a wire-protocol
// daemon on a unix socket with N concurrent clients pipelining
// write→kernel→read chains through shared-memory buffers:
//
//	accelsim -exp service -clients 64 -per-tenant 8
//
// `-exp chaos` runs the fault-injection harness: a seeded multi-tenant
// Parboil workload under injected device failures and slice delays on
// the in-process runtime, the deterministic runaway-kernel watchdog
// scenario, and client-side transport chaos (dropped frames, torn
// connections, failed shm maps) against a clean child-process daemon.
// Every chain must be byte-identical to the native reference or fail
// with a typed error, and both runtimes must drain to zero:
//
//	accelsim -exp chaos -seed 42
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/accelos"
	"repro/internal/clc"
	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/opencl"
	"repro/internal/parboil"
	"repro/internal/passes"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	// Re-executed as the chaos daemon child: serve and never return.
	if sock := os.Getenv(experiments.ChaosDaemonEnv); sock != "" {
		experiments.ServeChaosDaemon(sock)
		return
	}
	exp := flag.String("exp", "all", "experiment id (fig2, fig9..fig15, table1, table2, cluster, chaos, all)")
	platform := flag.String("platform", "both", "platform: nvidia, amd or both")
	full := flag.Bool("full", false, "paper-scale populations (625 pairs, 16384 4-sets, 32768 8-sets); slow")
	pairs := flag.Int("pairs", 0, "override pair population size")
	fours := flag.Int("fours", 0, "override 4-set population size")
	eights := flag.Int("eights", 0, "override 8-set population size")
	par := flag.Int("parallel", runtime.NumCPU(), "workload-level parallelism")
	devices := flag.Int("devices", 3, "cluster experiment: pool size (heterogeneous, alternating platforms)")
	policy := flag.String("policy", "all", "cluster experiment: placement policy, or 'all' to sweep")
	tenants := flag.Int("tenants", 3, "cluster experiment: concurrent applications")
	perTenant := flag.Int("per-tenant", 4, "cluster experiment: kernel requests per application")
	chains := flag.Int("chains", 8, "live experiment: independent kernel+transfer pipelines")
	clients := flag.Int("clients", 8, "service experiment: concurrent daemon clients")
	trace := flag.String("trace", "", "run a live multi-tenant workload and write its Chrome trace_event JSON here (load in chrome://tracing or Perfetto)")
	profile := flag.Bool("profile", false, "collect and dump sampled VM execution profiles for the live run")
	tier := flag.Bool("tier", false, "live experiment: tiered execution — cheap tier-0 first launches, background hot-kernel recompilation (promotions reported)")
	seed := flag.Int64("seed", 42, "chaos experiment: fault-injection RNG seed")
	dumpIR := flag.String("dump-ir", "", "print a named Parboil kernel's IR before and after the O1 pipeline, then exit (e.g. -dump-ir sad/larger_sad_calc_8)")
	disable := flag.String("disable-pass", "", "comma-separated O1 passes to skip with -dump-ir (mem2reg, constfold, dce, simplifycfg)")
	flag.Parse()

	if *dumpIR != "" {
		if err := runDumpIR(*dumpIR, *disable); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	if *trace != "" {
		if err := runTraced(*tenants, *perTenant, *trace, *profile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	if *exp == "cluster" {
		if err := runCluster(*devices, *policy, *tenants, *perTenant); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	if *exp == "live" {
		if err := runLive(*chains, *profile, *tier); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	if *exp == "service" {
		if err := runService(*clients, *perTenant); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	if *exp == "chaos" {
		if err := runChaos(*seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	var devs []*device.Platform
	switch *platform {
	case "both":
		devs = device.Platforms()
	default:
		d, err := device.ByName(*platform)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		devs = []*device.Platform{d}
	}

	sizes := experiments.Sizes{Pairs: 200, Fours: 256, Eights: 192}
	if *full {
		sizes = experiments.PaperSizes
	}
	if *pairs > 0 {
		sizes.Pairs = *pairs
	}
	if *fours > 0 {
		sizes.Fours = *fours
	}
	if *eights > 0 {
		sizes.Eights = *eights
	}

	for _, dev := range devs {
		fmt.Printf("==================== %s ====================\n", dev.Name)
		e := experiments.NewEngine(dev)
		needPops := map[string]bool{"fig9": true, "fig10": true, "fig12": true,
			"fig13": true, "fig14": true, "table1": true, "table2": true, "all": true}
		var pops []*experiments.Population
		if needPops[*exp] {
			fmt.Printf("running populations (pairs=%d, 4-sets=%d, 8-sets=%d)...\n",
				sizes.Pairs, sizes.Fours, sizes.Eights)
			pops = e.RunPopulations(sizes, *par)
		}
		run := func(id string) {
			switch id {
			case "fig2":
				fig2(e)
			case "fig9":
				fig9(pops)
			case "fig10":
				fig10(pops)
			case "fig11":
				fig11(e)
			case "fig12":
				fig12(pops)
			case "fig13":
				fig13(pops)
			case "fig14":
				fig14(pops)
			case "fig15":
				fig15(e)
			case "table1", "table2":
				table(pops, dev.Vendor)
			default:
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
				os.Exit(2)
			}
		}
		if *exp == "all" {
			for _, id := range []string{"fig2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table1"} {
				run(id)
			}
		} else {
			run(*exp)
		}
	}
}

var schemes = []experiments.Scheme{experiments.Baseline, experiments.EK, experiments.AccelOS}

// runDumpIR prints a kernel's IR before and after the VM's O1
// optimization pipeline — the inspection tool for the per-pass disable
// knob (skip a pass and diff the output to see what it contributed).
func runDumpIR(name, disable string) error {
	k, err := parboil.ByName(name)
	if err != nil {
		return err
	}
	mod, err := clc.Compile(k.Source, k.Name)
	if err != nil {
		return err
	}
	var skip []string
	for _, p := range strings.Split(disable, ",") {
		if p = strings.TrimSpace(p); p != "" {
			skip = append(skip, p)
		}
	}
	fmt.Printf("--- %s: pre-pipeline IR (clc -O0 memory form) ---\n\n", name)
	fmt.Println(mod.String())
	opt := ir.CloneModule(mod)
	if err := passes.RunO1(opt, skip...); err != nil {
		return fmt.Errorf("O1 pipeline: %w", err)
	}
	pipeline := "mem2reg + constfold + dce + simplifycfg"
	if len(skip) > 0 {
		pipeline += " minus " + strings.Join(skip, ",")
	}
	fmt.Printf("--- %s: post-pipeline IR (%s) ---\n\n", name, pipeline)
	fmt.Println(opt.String())
	pre, post := mod.Lookup(k.Name), opt.Lookup(k.Name)
	fmt.Printf("kernel %s: %d -> %d instructions\n", k.Name, pre.NumInstrs(), post.NumInstrs())
	return nil
}

// runCluster sweeps the cluster scheduler: one row per placement
// policy, with and without rebalancing.
func runCluster(devices int, policy string, tenants, perTenant int) error {
	pols := []string{policy}
	if policy == "all" {
		pols = cluster.PolicyNames()
	}
	fmt.Printf("--- cluster: %d devices, %d tenants x %d requests ---\n", devices, tenants, perTenant)
	fmt.Printf("%-16s %-10s %12s %8s %8s %11s %s\n",
		"policy", "rebalance", "makespan", "speedup", "spread", "migrations", "tenant shares")
	for _, pol := range pols {
		for _, reb := range []bool{false, true} {
			rep, err := experiments.RunClusterExperiment(experiments.ClusterConfig{
				Devices: devices, Policy: pol,
				Tenants: tenants, PerTenant: perTenant,
				Seed: 0xC10, Rebalance: reb,
			})
			if err != nil {
				return err
			}
			var shares strings.Builder
			for _, t := range experiments.SortedTenants(rep.TenantShares) {
				fmt.Fprintf(&shares, "%s=%.2f ", t, rep.TenantShares[t])
			}
			fmt.Printf("%-16s %-10v %12d %7.2fx %8.3f %11d %s\n",
				pol, reb, rep.Result.Makespan, rep.Speedup, rep.ShareSpread,
				rep.Result.Migrations, shares.String())
		}
	}
	return nil
}

// runLive is the live-path counterpart of the simulated experiments: it
// drives the interpreter-backed runtime through the event-based host
// API with modeled DMA timing (transfers take bus wall time, host CPU
// idle — what real hardware does). One application runs `chains`
// independent write→kernel→read pipelines twice — serially through the
// blocking wrappers, then asynchronously with wait-list edges only —
// and reports the throughput the out-of-order window buys by
// overlapping transfers with in-flight kernels.
func runLive(chains int, profile, tier bool) error {
	if chains < 1 {
		chains = 1
	}
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	rt.Ctx.SetDMAModel(true)
	var tc *interp.TierController
	if tier {
		// A low hotness threshold and exact sampling so the small live
		// kernels (4 work-groups a launch) cross it within the run and
		// the promotion machinery is visible.
		tc = rt.EnableTiering(interp.TierOptions{HotInstrs: 1 << 12, SampleEvery: 1})
		defer tc.Close()
	}
	var prof *interp.Profiler
	if profile && tier {
		// The tier controller's own profiler already samples every
		// launch (its snapshots feed the promotion guide); installing a
		// second one would starve it of the hotness signal.
		prof = tc.Profiler()
	} else if profile {
		prof = interp.NewProfiler(interp.ProfileOptions{PerOpcode: true, PerBlock: true, SampleEvery: 1})
		rt.SetProfiler(prof)
	}
	app := rt.Connect("live")
	defer app.Close()
	prog, err := app.CreateProgram(`
kernel void strided(global float* d, int n, int stride, int iters)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        float acc = d[i * stride];
        int it;
        for (it = 0; it < iters; ++it) acc = acc * 1.000001f + 0.5f;
        d[i * stride] = acc;
    }
}
`)
	if err != nil {
		return err
	}
	// Each chain uploads 4 MB, runs a strided kernel across it and reads
	// the 4 MB back: the transfers are DMA wall time, the kernel is
	// interpreter CPU time — overlap is only possible through events.
	const elems, n, iters = 1 << 20, 256, 16
	const stride = elems / n
	type chain struct {
		buf  *accelos.BufferHandle
		kern *accelos.KernelHandle
		host []byte
	}
	cs := make([]chain, chains)
	for c := range cs {
		buf, err := app.CreateBuffer(elems * 4)
		if err != nil {
			return err
		}
		k, err := prog.CreateKernel("strided")
		if err != nil {
			return err
		}
		_ = k.SetArgBuffer(0, buf)
		_ = k.SetArgInt32(1, n)
		_ = k.SetArgInt32(2, stride)
		_ = k.SetArgInt32(3, iters)
		host := make([]byte, elems*4)
		for i := 0; i < elems; i += stride {
			binary.LittleEndian.PutUint32(host[i*4:], math.Float32bits(float32(c+i)))
		}
		cs[c] = chain{buf: buf, kern: k, host: host}
	}
	nd := opencl.ND1(n, 64)

	serialStart := time.Now()
	for _, c := range cs {
		if err := c.buf.Write(0, c.host); err != nil {
			return err
		}
		if err := app.EnqueueKernel(c.kern, nd); err != nil {
			return err
		}
		if err := c.buf.Read(0, c.host); err != nil {
			return err
		}
	}
	serial := time.Since(serialStart)

	asyncStart := time.Now()
	tails := make([]*opencl.Event, 0, len(cs))
	events := make([]*opencl.Event, 0, 3*len(cs))
	for _, c := range cs {
		wev, err := c.buf.WriteAsync(0, c.host)
		if err != nil {
			return err
		}
		kev, err := app.EnqueueKernelAsync(c.kern, nd, wev)
		if err != nil {
			return err
		}
		rev, err := c.buf.ReadAsync(0, c.host, kev)
		if err != nil {
			return err
		}
		tails = append(tails, rev)
		events = append(events, wev, kev, rev)
	}
	app.Finish()
	async := time.Since(asyncStart)
	if err := opencl.WaitAll(tails...); err != nil {
		return fmt.Errorf("async pipeline failed: %w", err)
	}

	// Measured overlap from the events' own profiling timestamps (the
	// clGetEventProfilingInfo analogue): the sum of command execution
	// spans against the pipeline's wall time. 1.00x means fully serial;
	// anything above is work the wait-list window genuinely overlapped.
	var busy, queued time.Duration
	for _, ev := range events {
		p, err := ev.ProfilingInfo()
		if err != nil {
			return fmt.Errorf("profiling info: %w", err)
		}
		busy += p.Duration()
		queued += p.QueueDelay()
	}
	st := rt.Stats()
	fmt.Printf("--- live: %d independent write→kernel→read pipelines, one app ---\n", chains)
	fmt.Printf("serial (blocking wrappers):   %12v\n", serial)
	fmt.Printf("async  (wait-list edges):     %12v\n", async)
	fmt.Printf("throughput gain:              %11.2fx\n", float64(serial)/float64(async))
	fmt.Printf("measured overlap (profiling): %11.2fx  (%v command time in %v wall)\n",
		float64(busy)/float64(async), busy.Round(time.Millisecond), async.Round(time.Millisecond))
	fmt.Printf("mean wait-list queue delay:   %12v\n", (queued / time.Duration(len(events))).Round(time.Microsecond))
	fmt.Printf("runtime: %d launches, %d re-plans, %d wait-deferred\n",
		st.KernelsLaunched, st.Replans, st.WaitDeferred)
	if tc != nil {
		fmt.Printf("tiered execution: %d background promotion(s) to tier 1\n", tc.Promotions())
	}
	if prof != nil {
		fmt.Println("\n--- VM execution profiles ---")
		prof.Dump(os.Stdout)
	}
	return nil
}

// runService measures the out-of-process service path: an in-process
// daemon on a private unix socket, `clients` concurrent client shims
// each pipelining `perClient` write→kernel→read chains through
// shared-memory buffers. Reported are aggregate launch throughput and
// the tail of the full chain latency (enqueue to read-back complete) —
// the numbers the BENCH_service CI job tracks at 1/8/64 clients.
func runService(clients, perClient int) error {
	if clients < 1 {
		clients = 1
	}
	if perClient < 1 {
		perClient = 1
	}
	dir, err := os.MkdirTemp("", "acceld")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "d.sock")
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	reg := telemetry.NewRegistry()
	rt.SetTelemetry(nil, reg, nil)
	srv := service.NewServer(rt, service.Options{Metrics: reg})
	if err := srv.Start(sock); err != nil {
		return err
	}
	defer srv.Close()

	const src = `
kernel void strided(global float* d, int n, int stride, int iters)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        float acc = d[i * stride];
        int it;
        for (it = 0; it < iters; ++it) acc = acc * 1.000001f + 0.5f;
        d[i * stride] = acc;
    }
}
`
	const elems, n, iters = 1 << 16, 256, 16
	var wg sync.WaitGroup
	lats := make([][]time.Duration, clients)
	errs := make([]error, clients)
	start := time.Now()
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = func() error {
				c, err := service.Dial(sock, fmt.Sprintf("app%d", w), "")
				if err != nil {
					return err
				}
				defer c.Close()
				prog, err := c.CreateProgram(src)
				if err != nil {
					return err
				}
				k, err := prog.CreateKernel("strided")
				if err != nil {
					return err
				}
				buf, err := c.CreateBuffer(elems * 4)
				if err != nil {
					return err
				}
				_ = k.SetArgBuffer(0, buf)
				_ = k.SetArgInt32(1, n)
				_ = k.SetArgInt32(2, elems/n)
				_ = k.SetArgInt32(3, iters)
				host := make([]byte, elems*4)
				for it := 0; it < perClient; it++ {
					t0 := time.Now()
					wev, err := buf.WriteAsync(0, host)
					if err != nil {
						return err
					}
					kev, err := c.EnqueueKernelAsync(k, opencl.ND1(n, 64), wev)
					if err != nil {
						return err
					}
					rev, err := buf.ReadAsync(0, host, kev)
					if err != nil {
						return err
					}
					if err := rev.Wait(); err != nil {
						return err
					}
					lats[w] = append(lats[w], time.Since(t0))
				}
				return nil
			}()
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for w, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d: %w", w, err)
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p int) time.Duration { return all[(len(all)-1)*p/100] }
	launches := clients * perClient
	st := rt.Stats()
	fmt.Printf("--- service: %d clients x %d write→kernel→read chains over one daemon ---\n", clients, perClient)
	fmt.Printf("wall time:          %12v\n", wall)
	fmt.Printf("launch throughput:  %12.1f launches/sec\n", float64(launches)/wall.Seconds())
	fmt.Printf("chain latency:      p50=%v p90=%v p99=%v\n",
		pct(50).Round(time.Microsecond), pct(90).Round(time.Microsecond), pct(99).Round(time.Microsecond))
	fmt.Printf("runtime: %d launches, %d re-plans, %d wait-deferred\n",
		st.KernelsLaunched, st.Replans, st.WaitDeferred)
	return nil
}

// runTraced drives a fully instrumented live multi-tenant workload —
// every tenant pipelines write→kernel→read chains through the runtime
// concurrently — and exports what the telemetry layer saw: a Chrome
// trace_event JSON of every kernel lifecycle, slice, replan and DMA
// transfer; a Prometheus-style metrics snapshot; the live §7.4
// scorecard; and (with -profile) the sampled VM execution profiles.
func runTraced(tenants, perTenant int, tracePath string, profile bool) error {
	if tenants < 1 {
		tenants = 1
	}
	if perTenant < 1 {
		perTenant = 1
	}
	rt := accelos.NewRuntime(opencl.GetPlatforms()[0])
	defer rt.Shutdown()
	rt.Ctx.SetDMAModel(true)
	tr := telemetry.New(0)
	reg := telemetry.NewRegistry()
	score := metrics.NewLiveScorecard()
	rt.SetTelemetry(tr, reg, score)
	var prof *interp.Profiler
	if profile {
		prof = interp.NewProfiler(interp.ProfileOptions{PerOpcode: true, PerBlock: true, SampleEvery: 1})
		rt.SetProfiler(prof)
	}

	const elems, n, stride = 1 << 18, 256, 1 << 10
	nd := opencl.ND1(n, 64)
	var wg sync.WaitGroup
	errCh := make(chan error, tenants)
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			errCh <- func() error {
				app := rt.Connect(fmt.Sprintf("app%d", ti))
				defer app.Close()
				prog, err := app.CreateProgram(`
kernel void strided(global float* d, int n, int stride, int iters)
{
    int i = (int)get_global_id(0);
    if (i < n) {
        float acc = d[i * stride];
        int it;
        for (it = 0; it < iters; ++it) acc = acc * 1.000001f + 0.5f;
        d[i * stride] = acc;
    }
}
`)
				if err != nil {
					return err
				}
				host := make([]byte, elems*4)
				var tails []*opencl.Event
				for c := 0; c < perTenant; c++ {
					buf, err := app.CreateBuffer(elems * 4)
					if err != nil {
						return err
					}
					k, err := prog.CreateKernel("strided")
					if err != nil {
						return err
					}
					_ = k.SetArgBuffer(0, buf)
					_ = k.SetArgInt32(1, n)
					_ = k.SetArgInt32(2, stride)
					_ = k.SetArgInt32(3, int32(16*(ti+1)))
					wev, err := buf.WriteAsync(0, host)
					if err != nil {
						return err
					}
					kev, err := app.EnqueueKernelAsync(k, nd, wev)
					if err != nil {
						return err
					}
					rev, err := buf.ReadAsync(0, host, kev)
					if err != nil {
						return err
					}
					tails = append(tails, rev)
				}
				app.Finish()
				return opencl.WaitAll(tails...)
			}()
		}(ti)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}

	f, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("--- traced live run: %d tenants x %d chains ---\n", tenants, perTenant)
	fmt.Printf("wrote %d spans to %s (%d dropped)\n\n", tr.Len(), tracePath, tr.Dropped())
	if err := reg.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println(score.Compute().String())
	if prof != nil {
		fmt.Println("\n--- VM execution profiles ---")
		prof.Dump(os.Stdout)
	}
	return nil
}

func fig2(e *experiments.Engine) {
	fmt.Println("\n--- Fig. 2: parallel execution of bfs, cutcp, stencil, tpacf ---")
	r := e.RunWorkload(experiments.Fig2Workload())
	fmt.Println("(a) individual slowdowns:")
	for _, s := range schemes {
		fmt.Printf("    %-8s", s)
		for i, k := range r.Kernels {
			fmt.Printf("  %s=%.2f", shortName(k), r.Slowdowns[s][i])
		}
		fmt.Println()
	}
	fmt.Printf("(b) system unfairness: OpenCL=%.2f EK=%.2f accelOS=%.2f (accelOS %.2fx fairer)\n",
		r.Unfairness[experiments.Baseline], r.Unfairness[experiments.EK],
		r.Unfairness[experiments.AccelOS], r.FairnessImprovement(experiments.AccelOS))
	fmt.Printf("(c) throughput speedup:  EK=%.2fx accelOS=%.2fx\n",
		r.Speedup[experiments.EK], r.Speedup[experiments.AccelOS])
}

func fig9(pops []*experiments.Population) {
	fmt.Println("\n--- Fig. 9: average system unfairness (lower is better) ---")
	fmt.Printf("%8s %10s %10s %10s\n", "requests", "OpenCL", "EK", "accelOS")
	for _, p := range pops {
		fmt.Printf("%8d %10.2f %10.2f %10.2f\n", p.K,
			p.AvgUnfairness(experiments.Baseline),
			p.AvgUnfairness(experiments.EK),
			p.AvgUnfairness(experiments.AccelOS))
	}
}

func fig10(pops []*experiments.Population) {
	fmt.Println("\n--- Fig. 10: fairness improvement distribution (higher is better) ---")
	fmt.Printf("%8s %-8s %8s %8s %8s %8s %8s %10s\n", "requests", "scheme", "min", "p25", "median", "p75", "max", "%below 1x")
	for _, p := range pops {
		for _, s := range []experiments.Scheme{experiments.EK, experiments.AccelOS} {
			xs := p.FairnessImprovements(s)
			fmt.Printf("%8d %-8s %8.2f %8.2f %8.2f %8.2f %8.2f %9.1f%%\n", p.K, s.String(),
				metrics.Percentile(xs, 0), metrics.Percentile(xs, 25), metrics.Percentile(xs, 50),
				metrics.Percentile(xs, 75), metrics.Percentile(xs, 100),
				100*metrics.FractionBelow(xs, 1))
		}
	}
}

func fig11(e *experiments.Engine) {
	fmt.Println("\n--- Fig. 11: unfairness for alphabetical 2-kernel pairs (lower is better) ---")
	fmt.Printf("%-58s %8s %8s %8s\n", "pair", "OpenCL", "EK", "accelOS")
	for _, p := range experiments.Fig11Pairs() {
		r := e.RunWorkload(p)
		name := shortName(r.Kernels[0]) + " + " + shortName(r.Kernels[1])
		fmt.Printf("%-58s %8.2f %8.2f %8.2f\n", name,
			r.Unfairness[experiments.Baseline], r.Unfairness[experiments.EK], r.Unfairness[experiments.AccelOS])
	}
}

func fig12(pops []*experiments.Population) {
	fmt.Println("\n--- Fig. 12: average kernel execution overlap (higher is better) ---")
	fmt.Printf("%8s %10s %10s %10s\n", "requests", "OpenCL", "EK", "accelOS")
	for _, p := range pops {
		fmt.Printf("%8d %9.0f%% %9.0f%% %9.0f%%\n", p.K,
			100*p.AvgOverlap(experiments.Baseline),
			100*p.AvgOverlap(experiments.EK),
			100*p.AvgOverlap(experiments.AccelOS))
	}
}

func fig13(pops []*experiments.Population) {
	fmt.Println("\n--- Fig. 13: average system throughput speedup over OpenCL ---")
	fmt.Printf("%8s %10s %10s\n", "requests", "EK", "accelOS")
	for _, p := range pops {
		fmt.Printf("%8d %9.2fx %9.2fx\n", p.K,
			p.AvgSpeedup(experiments.EK), p.AvgSpeedup(experiments.AccelOS))
	}
}

func fig14(pops []*experiments.Population) {
	fmt.Println("\n--- Fig. 14: throughput speedup distribution ---")
	fmt.Printf("%8s %-8s %8s %8s %8s %8s %8s %10s\n", "requests", "scheme", "min", "p25", "median", "p75", "max", "%slowdown")
	for _, p := range pops {
		for _, s := range []experiments.Scheme{experiments.EK, experiments.AccelOS} {
			xs := p.Speedups(s)
			fmt.Printf("%8d %-8s %8.2f %8.2f %8.2f %8.2f %8.2f %9.1f%%\n", p.K, s.String(),
				metrics.Percentile(xs, 0), metrics.Percentile(xs, 25), metrics.Percentile(xs, 50),
				metrics.Percentile(xs, 75), metrics.Percentile(xs, 100),
				100*metrics.FractionBelow(xs, 1))
		}
	}
}

func fig15(e *experiments.Engine) {
	fmt.Println("\n--- Fig. 15: accelOS single-kernel performance impact ---")
	rows := e.Fig15()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Kernel < rows[j].Kernel })
	var naive, opt []float64
	fmt.Printf("%-38s %8s %10s\n", "kernel", "naive", "optimized")
	for _, r := range rows {
		fmt.Printf("%-38s %8.3f %10.3f\n", r.Kernel, r.Naive, r.Optimized)
		naive = append(naive, r.Naive)
		opt = append(opt, r.Optimized)
	}
	fmt.Printf("%-38s %8.3f %10.3f\n", "geometric mean", metrics.GeoMean(naive), metrics.GeoMean(opt))
}

func table(pops []*experiments.Population, vendor string) {
	n := "1"
	if vendor == "AMD" {
		n = "2"
	}
	fmt.Printf("\n--- Table %s: STP / ANTT / worst ANTT (%s) ---\n", n, vendor)
	fmt.Printf("%8s | %8s %8s %8s | %8s %8s %8s\n", "", "EK", "", "", "accelOS", "", "")
	fmt.Printf("%8s | %8s %8s %8s | %8s %8s %8s\n", "RQSTs", "STP", "ANTT", "W.ANTT", "STP", "ANTT", "W.ANTT")
	for _, p := range pops {
		fmt.Printf("%8d | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n", p.K,
			p.AvgSTP(experiments.EK), p.AvgANTT(experiments.EK), p.MaxWANTT(experiments.EK),
			p.AvgSTP(experiments.AccelOS), p.AvgANTT(experiments.AccelOS), p.MaxWANTT(experiments.AccelOS))
	}
}

func shortName(full string) string {
	if i := strings.Index(full, "/"); i >= 0 {
		return full[:i] + "/" + abbreviate(full[i+1:])
	}
	return full
}

func abbreviate(s string) string {
	if len(s) > 20 {
		return s[:20]
	}
	return s
}

// runChaos drives the fault-injection harness end to end: the
// in-process runtime phase (device failures + slice delays), the
// deterministic watchdog scenario, then transport chaos against a
// clean daemon child (this binary re-executed via ChaosDaemonEnv).
func runChaos(seed int64) error {
	fmt.Printf("== chaos: runtime phase (seed %d) ==\n", seed)
	if _, err := experiments.RunChaosRuntime(seed, os.Stdout); err != nil {
		return err
	}
	if err := experiments.RunChaosWatchdog(os.Stdout); err != nil {
		return err
	}

	fmt.Println("== chaos: service phase (client-side transport faults) ==")
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	sock, stop, err := experiments.SpawnChaosDaemon(exe)
	if err != nil {
		return err
	}
	if _, err := experiments.RunChaosService(sock, seed, os.Stdout); err != nil {
		stop()
		return err
	}
	if err := stop(); err != nil {
		return err
	}
	fmt.Println("chaos: all chains byte-identical or typed; daemon drained to mem=0 active=0")
	return nil
}
