// Fault-hook overhead guard: the chaos injection points are compiled
// into the launch and placement hot paths unconditionally, so their
// disabled cost must stay negligible. BenchmarkFaultDispatch runs the
// same blocking kernel dispatch twice — "clean" with no injector
// installed (the production shape: one atomic load plus a nil check
// per hook site) and "hooks-idle" with an injector installed but every
// point at probability zero (the worst disabled case: a mutex and a
// map lookup per site, no fires). CI's bench-fault job holds the ratio
// within 3% in BENCH_fault.json.
package repro

import (
	"testing"

	"repro/internal/accelos"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/opencl"
)

const faultBenchSrc = `
kernel void bump(global int* out, int n)
{
    int i = (int)get_global_id(0);
    if (i < n) out[i] = out[i] + 1;
}
`

func BenchmarkFaultDispatch(b *testing.B) {
	b.Run("clean", func(b *testing.B) { benchFaultDispatch(b, false) })
	b.Run("hooks-idle", func(b *testing.B) { benchFaultDispatch(b, true) })
}

func benchFaultDispatch(b *testing.B, armed bool) {
	rt := accelos.NewBoundedClusterRuntime(opencl.GetPlatforms()[:1], cluster.LeastLoaded(), 2)
	defer rt.Shutdown()
	if armed {
		inj := fault.NewInjector(1).
			Enable(fault.DeviceFail, 0).
			Enable(fault.SliceDelay, 0)
		rt.Pool().SetFaultInjector(inj)
		opencl.SetFaultInjector(inj)
		defer opencl.SetFaultInjector(nil)
		defer rt.Pool().SetFaultInjector(nil)
	}

	app := rt.Connect("bench")
	defer app.Close()
	prog, err := app.CreateProgram(faultBenchSrc)
	if err != nil {
		b.Fatal(err)
	}
	k, err := prog.CreateKernel("bump")
	if err != nil {
		b.Fatal(err)
	}
	const n = 8192
	buf, err := app.CreateBuffer(n * 4)
	if err != nil {
		b.Fatal(err)
	}
	defer buf.Release()
	if err := k.SetArgBuffer(0, buf); err != nil {
		b.Fatal(err)
	}
	if err := k.SetArgInt32(1, n); err != nil {
		b.Fatal(err)
	}
	nd := opencl.NDRange{Dims: 1, Global: [3]int64{n, 1, 1}, Local: [3]int64{64, 1, 1}}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := app.EnqueueKernel(k, nd); err != nil {
			b.Fatal(err)
		}
	}
}
